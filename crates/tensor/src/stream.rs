//! Mode-major execution plans: the streamed slice layout.
//!
//! The per-mode [`crate::ModeIndex`] answers "which entries live in slice
//! `iₙ`?" with a list of entry *ids* — every consumer then gathers the
//! entry's value and multi-index through those ids, which turns the hottest
//! loop of the row-wise update into a scatter/gather over the COO arrays.
//!
//! A [`ModeStream`] removes that indirection: for one mode, the entry
//! values and the packed *other-mode* indices are physically reordered
//! slice-by-slice, so walking a slice is a linear scan of contiguous
//! memory. Within a slice, entries appear in ascending COO entry-id order —
//! the same order `ModeIndex::slice` yields — so algorithms that subsample
//! (`sample_stride`) or accumulate in slice order produce *identical*
//! results on either layout.
//!
//! COO stays the source of truth; a [`ModeStreams`] plan is derived from a
//! [`SparseTensor`] once per fit (`O(N·|Ω|)` time and memory) and is
//! immutable afterwards. Other-mode indices and entry ids are stored as
//! `u32` — half the memory traffic of `usize` on 64-bit targets, which is
//! most of the point of a bandwidth-bound layout — so dimensionalities and
//! `|Ω|` must fit in 32 bits (they do for every tensor in the paper by
//! orders of magnitude; [`ModeStreams::build`] checks).
//!
//! # Out-of-core plans
//!
//! The plan's storage is a [`StreamStore`]: either every mode's stream is
//! resident ([`ModeStreams::build`]) or the bulk arrays — values, packed
//! other-mode indices and entry ids — live in an unlinked
//! [`ScratchFile`](ptucker_memtrack::ScratchFile) and only the per-mode
//! slice offsets and inverse entry maps stay in RAM
//! ([`ModeStreams::build_spilled`]). A spilled mode is consumed through
//! [`SliceWindows`]: an iterator of **slice-aligned, budget-sized
//! windows**, each presented as an ordinary [`ModeStream`] view (slice `i`
//! of the window ↔ global slice `lo + i`) filled into one pinned buffer —
//! the row-update loop downstream stays zero-heap-allocation, windows
//! merely rebind which part of the file that buffer holds.

use crate::{Result, SparseTensor, TensorError};
use ptucker_memtrack::{MemoryBudget, Reservation, ScratchFile, SpillReservation};
use std::ops::Range;
use std::sync::Arc;

/// The streamed slice layout of one mode: values and packed other-mode
/// indices in slice-major order, plus the stream-position → COO entry-id
/// map for consumers that keep per-entry state in COO order (e.g. the
/// P-Tucker-Cache `Pres` table).
#[derive(Debug, Clone)]
pub struct ModeStream {
    mode: usize,
    /// Number of *other* modes (`N − 1`): the per-entry stride of `others`.
    other_count: usize,
    /// `offsets[i]..offsets[i+1]` delimits slice `i`'s stream positions.
    offsets: Vec<usize>,
    /// Entry values in stream order.
    values: Vec<f64>,
    /// Packed other-mode indices: stream position `p` owns
    /// `others[p*other_count..(p+1)*other_count]`, modes ascending with the
    /// stream's own mode skipped.
    others: Vec<u32>,
    /// Stream position → COO entry id.
    entry_ids: Vec<u32>,
    /// COO entry id → stream position (the inverse of `entry_ids`).
    /// Consumers that keep per-entry state *in this stream's order* — the
    /// stream-ordered `Pres` table of P-Tucker-Cache — use it to compute
    /// the permutation that carries that state from one mode's order to
    /// another's.
    entry_positions: Vec<u32>,
}

impl ModeStream {
    fn build(x: &SparseTensor, mode: usize) -> Self {
        let order = x.order();
        let other_count = order - 1;
        let nnz = x.nnz();
        let dim = x.dims()[mode];
        let mut offsets = Vec::with_capacity(dim + 1);
        let mut values = Vec::with_capacity(nnz);
        let mut others = Vec::with_capacity(nnz * other_count);
        let mut entry_ids = Vec::with_capacity(nnz);
        let mut entry_positions = vec![0u32; nnz];
        offsets.push(0);
        for i in 0..dim {
            for &e in x.slice(mode, i) {
                let idx = x.index(e);
                entry_positions[e] = values.len() as u32;
                values.push(x.value(e));
                for (k, &ik) in idx.iter().enumerate() {
                    if k != mode {
                        others.push(ik as u32);
                    }
                }
                entry_ids.push(e as u32);
            }
            offsets.push(values.len());
        }
        ModeStream {
            mode,
            other_count,
            offsets,
            values,
            others,
            entry_ids,
            entry_positions,
        }
    }

    /// The mode this stream is laid out for.
    #[inline]
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Number of other modes (`N − 1`) — the per-entry stride of
    /// [`ModeStream::others`].
    #[inline]
    pub fn other_count(&self) -> usize {
        self.other_count
    }

    /// Number of slices (`Iₙ`).
    #[inline]
    pub fn num_slices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The stream positions of slice `i` (`Ω⁽ⁿ⁾ᵢ` in stream coordinates).
    #[inline]
    pub fn slice_range(&self, i: usize) -> Range<usize> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// `|Ω⁽ⁿ⁾ᵢ|` — the per-row work weight the nnz-balanced scheduler
    /// partitions by.
    #[inline]
    pub fn slice_len(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// All values in stream order.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The flat packed other-mode index storage (stride
    /// [`ModeStream::other_count`]).
    #[inline]
    pub fn others_flat(&self) -> &[u32] {
        &self.others
    }

    /// The packed other-mode indices of stream position `p` (ascending
    /// mode order, this stream's mode skipped).
    #[inline]
    pub fn others(&self, p: usize) -> &[u32] {
        &self.others[p * self.other_count..(p + 1) * self.other_count]
    }

    /// The COO entry id behind stream position `p`.
    #[inline]
    pub fn entry_id(&self, p: usize) -> usize {
        self.entry_ids[p] as usize
    }

    /// The stream position holding COO entry `e` (inverse of
    /// [`ModeStream::entry_id`]).
    #[inline]
    pub fn position_of(&self, e: usize) -> usize {
        self.entry_positions[e] as usize
    }
}

/// Where a [`ModeStreams`] plan keeps its bulk arrays.
#[derive(Debug)]
pub enum StreamStore {
    /// Every mode's stream is fully resident — the default whenever the
    /// plan fits the memory budget.
    InMemory(Vec<ModeStream>),
    /// The bulk arrays (values, packed other-mode indices, entry ids) of
    /// every mode live in a per-fit scratch file; RAM holds only the
    /// per-mode slice offsets and inverse entry maps. Consumed through
    /// [`SliceWindows`].
    Spilled {
        /// The unlinked per-fit scratch file holding every mode's
        /// sections.
        file: Arc<ScratchFile>,
        /// Per-mode metadata and section offsets into `file`.
        modes: Vec<SpilledModeStream>,
        /// Keeps the resident-metadata bytes visible to the RAM meter for
        /// the plan's lifetime.
        _resident: Reservation,
        /// Keeps the on-disk bytes visible to the spill meter for the
        /// plan's lifetime.
        _spill: SpillReservation,
    },
}

/// A mode's stream whose bulk arrays live in the plan's scratch file.
///
/// RAM keeps the slice offsets (`Iₙ+1` words) and the COO-entry-id →
/// stream-position inverse map (`|Ω|` packed `u32`s — needed by consumers
/// that permute stream-ordered state between modes, like the Cached
/// variant's spilled `Pres` table). Everything per-position — values,
/// packed other-mode indices, entry ids — is read back window-at-a-time
/// through [`SliceWindows`].
#[derive(Debug)]
pub struct SpilledModeStream {
    mode: usize,
    other_count: usize,
    offsets: Vec<usize>,
    entry_positions: Vec<u32>,
    max_slice_len: usize,
    /// Byte offsets of this mode's sections in the plan's scratch file.
    values_off: u64,
    others_off: u64,
    ids_off: u64,
}

impl SpilledModeStream {
    /// The mode this stream is laid out for.
    #[inline]
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Number of other modes (`N − 1`).
    #[inline]
    pub fn other_count(&self) -> usize {
        self.other_count
    }

    /// Number of slices (`Iₙ`).
    #[inline]
    pub fn num_slices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total stream positions (`|Ω|`).
    #[inline]
    pub fn len(&self) -> usize {
        *self.offsets.last().expect("offsets never empty")
    }

    /// Whether the stream holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The **global** stream positions of slice `i`.
    #[inline]
    pub fn slice_range(&self, i: usize) -> Range<usize> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// `|Ω⁽ⁿ⁾ᵢ|` for slice `i`.
    #[inline]
    pub fn slice_len(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// The largest slice's position count — the irreducible window size,
    /// since windows are slice-aligned.
    #[inline]
    pub fn max_slice_len(&self) -> usize {
        self.max_slice_len
    }

    /// The global stream position holding COO entry `e`.
    #[inline]
    pub fn position_of(&self, e: usize) -> usize {
        self.entry_positions[e] as usize
    }

    /// Number of slice-aligned windows a sweep with `cap_positions` of
    /// window capacity will take (no I/O; pure offset arithmetic).
    pub fn window_count(&self, cap_positions: usize) -> usize {
        let cap = cap_positions.max(1);
        let mut n = 0;
        let mut lo = 0;
        while lo < self.num_slices() {
            lo = window_extent(&self.offsets, lo, cap);
            n += 1;
        }
        n
    }
}

/// Returns the exclusive upper slice bound of the window starting at slice
/// `lo`: the longest run of whole slices whose combined positions fit
/// `cap`, but always at least one slice (a slice larger than `cap` forms a
/// singleton window — windows never split slices).
fn window_extent(offsets: &[usize], lo: usize, cap: usize) -> usize {
    let start = offsets[lo];
    let num_slices = offsets.len() - 1;
    let mut hi = lo + 1;
    while hi < num_slices && offsets[hi + 1] - start <= cap {
        hi += 1;
    }
    hi
}

/// The full mode-major execution plan: one stream per mode, resident or
/// spilled (see [`StreamStore`]).
#[derive(Debug)]
pub struct ModeStreams {
    store: StreamStore,
}

impl ModeStreams {
    fn check_widths(x: &SparseTensor) -> Result<()> {
        let lim = u32::MAX as usize;
        if x.nnz() > lim {
            return Err(TensorError::InvalidDims(format!(
                "nnz {} exceeds the streamed layout's u32 entry-id width",
                x.nnz()
            )));
        }
        if let Some(&d) = x.dims().iter().find(|&&d| d > lim) {
            return Err(TensorError::InvalidDims(format!(
                "dimensionality {d} exceeds the streamed layout's u32 index width"
            )));
        }
        Ok(())
    }

    /// Derives the fully resident plan from COO — `O(N·|Ω|)`, done once
    /// per fit.
    ///
    /// # Errors
    /// [`TensorError::InvalidDims`] if a dimensionality or `|Ω|` exceeds
    /// `u32::MAX` (the packed-index width).
    pub fn build(x: &SparseTensor) -> Result<Self> {
        Self::check_widths(x)?;
        Ok(ModeStreams {
            store: StreamStore::InMemory((0..x.order()).map(|n| ModeStream::build(x, n)).collect()),
        })
    }

    /// Derives the plan with its bulk arrays **spilled to a scratch
    /// file**, streaming each mode's sections to disk slice-by-slice
    /// through a bounded append buffer — peak transient memory during the
    /// build is the buffer plus one mode's resident metadata, not the
    /// full `O(N·|Ω|)` plan.
    ///
    /// The resident metadata (offsets + inverse entry maps) is booked with
    /// [`MemoryBudget::reserve_unchecked`] — it is the irreducible floor
    /// of the out-of-core path — and the file bytes with
    /// [`MemoryBudget::record_spill`]; both guards live inside the
    /// returned plan.
    ///
    /// # Errors
    /// [`TensorError::InvalidDims`] as for [`ModeStreams::build`], or
    /// [`TensorError::Io`] if scratch-file I/O fails.
    pub fn build_spilled(x: &SparseTensor, budget: &MemoryBudget) -> Result<Self> {
        Self::check_widths(x)?;
        const FLUSH: usize = 1024;
        let file = ScratchFile::create()?;
        let nnz = x.nnz();
        let order = x.order();
        let other_count = order - 1;
        let mut modes = Vec::with_capacity(order);
        let mut vbuf: Vec<f64> = Vec::with_capacity(FLUSH);
        let mut obuf: Vec<u32> = Vec::with_capacity(FLUSH * other_count);
        let mut ibuf: Vec<u32> = Vec::with_capacity(FLUSH);
        for mode in 0..order {
            let dim = x.dims()[mode];
            let mut offsets = Vec::with_capacity(dim + 1);
            let mut entry_positions = vec![0u32; nnz];
            let values_off = file.reserve_region(nnz as u64 * 8)?;
            let others_off = file.reserve_region(nnz as u64 * other_count as u64 * 4)?;
            let ids_off = file.reserve_region(nnz as u64 * 4)?;
            let mut written = 0usize;
            let mut max_slice_len = 0usize;
            offsets.push(0);
            for i in 0..dim {
                for &e in x.slice(mode, i) {
                    entry_positions[e] = (written + vbuf.len()) as u32;
                    vbuf.push(x.value(e));
                    for (k, &ik) in x.index(e).iter().enumerate() {
                        if k != mode {
                            obuf.push(ik as u32);
                        }
                    }
                    ibuf.push(e as u32);
                    if vbuf.len() == FLUSH {
                        file.write_f64s(values_off + written as u64 * 8, &vbuf)?;
                        file.write_u32s(
                            others_off + written as u64 * other_count as u64 * 4,
                            &obuf,
                        )?;
                        file.write_u32s(ids_off + written as u64 * 4, &ibuf)?;
                        written += vbuf.len();
                        vbuf.clear();
                        obuf.clear();
                        ibuf.clear();
                    }
                }
                offsets.push(written + vbuf.len());
                max_slice_len = max_slice_len.max(x.slice_len(mode, i));
            }
            if !vbuf.is_empty() {
                file.write_f64s(values_off + written as u64 * 8, &vbuf)?;
                file.write_u32s(others_off + written as u64 * other_count as u64 * 4, &obuf)?;
                file.write_u32s(ids_off + written as u64 * 4, &ibuf)?;
                vbuf.clear();
                obuf.clear();
                ibuf.clear();
            }
            modes.push(SpilledModeStream {
                mode,
                other_count,
                offsets,
                entry_positions,
                max_slice_len,
                values_off,
                others_off,
                ids_off,
            });
        }
        let resident = budget.reserve_unchecked(Self::resident_bytes_for(x));
        let spill = budget.record_spill(file.len() as usize);
        Ok(ModeStreams {
            store: StreamStore::Spilled {
                file: Arc::new(file),
                modes,
                _resident: resident,
                _spill: spill,
            },
        })
    }

    /// The resident stream for `mode`.
    ///
    /// # Panics
    /// Panics on a spilled plan — its per-position data is only reachable
    /// window-at-a-time through [`ModeStreams::windows`].
    #[inline]
    pub fn mode(&self, mode: usize) -> &ModeStream {
        match &self.store {
            StreamStore::InMemory(streams) => &streams[mode],
            StreamStore::Spilled { .. } => {
                panic!("ModeStreams::mode on a spilled plan; iterate SliceWindows instead")
            }
        }
    }

    /// The spilled metadata for `mode`.
    ///
    /// # Panics
    /// Panics on an in-memory plan (use [`ModeStreams::mode`]).
    #[inline]
    pub fn spilled_mode(&self, mode: usize) -> &SpilledModeStream {
        match &self.store {
            StreamStore::Spilled { modes, .. } => &modes[mode],
            StreamStore::InMemory(_) => {
                panic!("ModeStreams::spilled_mode on an in-memory plan")
            }
        }
    }

    /// Whether the bulk arrays live in a scratch file.
    #[inline]
    pub fn is_spilled(&self) -> bool {
        matches!(self.store, StreamStore::Spilled { .. })
    }

    /// The plan's storage — for consumers that need to branch on it.
    #[inline]
    pub fn store(&self) -> &StreamStore {
        &self.store
    }

    /// A windowed sweep over a spilled mode: slice-aligned windows of at
    /// most `cap_positions` stream positions each (single oversized slices
    /// become singleton windows), filled into one pinned buffer.
    ///
    /// The buffer is allocated once here, sized so that **any** mode's
    /// sweep fits (capacity vs. the plan-wide largest slice), so the
    /// sweeper can be reused for the whole fit — call
    /// [`SliceWindows::rewind`] to restart it on another mode without
    /// reallocating.
    ///
    /// # Panics
    /// Panics on an in-memory plan — windows exist to bound residency, and
    /// an in-memory plan is already fully resident.
    pub fn windows(&self, mode: usize, cap_positions: usize) -> SliceWindows<'_> {
        let (file, modes) = match &self.store {
            StreamStore::Spilled { file, modes, .. } => (&**file, &modes[..]),
            StreamStore::InMemory(_) => {
                panic!("ModeStreams::windows on an in-memory plan")
            }
        };
        let cap = cap_positions.max(1);
        let max_slice = modes.iter().map(|m| m.max_slice_len).max().unwrap_or(0);
        let max_slices = modes.iter().map(|m| m.num_slices()).max().unwrap_or(0);
        let buf_cap = cap.max(max_slice);
        let other_count = modes.first().map_or(0, |m| m.other_count);
        SliceWindows {
            modes,
            file,
            mode,
            cap,
            next_slice: 0,
            buf: ModeStream {
                mode,
                other_count,
                offsets: Vec::with_capacity(max_slices + 1),
                values: Vec::with_capacity(buf_cap),
                others: Vec::with_capacity(buf_cap * other_count),
                entry_ids: Vec::with_capacity(buf_cap),
                entry_positions: Vec::new(),
            },
        }
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        match &self.store {
            StreamStore::InMemory(streams) => streams.len(),
            StreamStore::Spilled { modes, .. } => modes.len(),
        }
    }

    /// Bytes the fully resident plan for `x` will occupy — computable
    /// *before* building, so callers can reserve against a memory budget
    /// first. Per mode: `|Ω|` values (8 B), `(N−1)·|Ω|` packed indices
    /// (4 B), `|Ω|` entry ids plus `|Ω|` inverse positions (4 B each) and
    /// `Iₙ+1` offsets (8 B).
    pub fn bytes_for(x: &SparseTensor) -> usize {
        let nnz = x.nnz();
        let order = x.order();
        let per_mode_entries = nnz * 8 + (order - 1) * nnz * 4 + 2 * nnz * 4;
        let offsets: usize = x.dims().iter().map(|&d| (d + 1) * 8).sum();
        order * per_mode_entries + offsets
    }

    /// RAM bytes a **spilled** plan for `x` keeps resident: per-mode slice
    /// offsets plus the inverse entry maps.
    pub fn resident_bytes_for(x: &SparseTensor) -> usize {
        let offsets: usize = x.dims().iter().map(|&d| (d + 1) * 8).sum();
        offsets + x.order() * x.nnz() * 4
    }

    /// Scratch-file bytes a spilled plan for `x` writes: per mode, values
    /// (8 B), packed other-mode indices (4 B each) and entry ids (4 B).
    pub fn spilled_bytes_for(x: &SparseTensor) -> usize {
        let nnz = x.nnz();
        let order = x.order();
        order * (nnz * 8 + (order - 1) * nnz * 4 + nnz * 4)
    }
}

/// A lending iterator of slice-aligned windows over a spilled plan, one
/// mode at a time.
///
/// Each [`SliceWindows::next_window`] call refills **one pinned buffer**
/// (allocated once, at construction, sized for any mode's sweep) from the
/// scratch file and presents it as an ordinary [`ModeStream`] whose slice
/// `i` is global slice `window.slices.start + i` and whose positions are
/// window-local (`global = window.base + local`). The buffer is reused —
/// across windows, and across modes via [`SliceWindows::rewind`] — so at
/// most one window is resident at a time, a whole fit allocates the
/// buffer once, and the row loop downstream performs no heap allocation.
#[derive(Debug)]
pub struct SliceWindows<'a> {
    modes: &'a [SpilledModeStream],
    file: &'a ScratchFile,
    mode: usize,
    cap: usize,
    next_slice: usize,
    buf: ModeStream,
}

/// The entry-id section of one slice-aligned window (see
/// [`SliceWindows::next_ids_window`]).
#[derive(Debug)]
pub struct IdsWindow<'a> {
    /// The global slice range this window covers.
    pub slices: Range<usize>,
    /// Global stream position of the window's first entry.
    pub base: usize,
    /// COO entry ids, window-local (`entry_ids[p]` is the entry at
    /// global position `base + p`).
    pub entry_ids: &'a [u32],
}

/// One slice-aligned window of a spilled mode's stream.
#[derive(Debug)]
pub struct Window<'a> {
    /// The global slice range this window covers.
    pub slices: Range<usize>,
    /// Global stream position of the window's first entry (window-local
    /// position `p` ↔ global position `base + p`).
    pub base: usize,
    /// The window as a resident [`ModeStream`] view: slices and positions
    /// are window-local; `position_of` is unavailable (the inverse map
    /// stays with the [`SpilledModeStream`]).
    pub stream: &'a ModeStream,
}

impl<'a> SliceWindows<'a> {
    /// The spilled metadata of the mode currently being swept.
    #[inline]
    fn sp(&self) -> &'a SpilledModeStream {
        &self.modes[self.mode]
    }

    /// Loads the next window into the pinned buffer, or returns `None`
    /// when every slice has been covered.
    ///
    /// # Errors
    /// [`TensorError::Io`] if reading the scratch file fails.
    pub fn next_window(&mut self) -> Result<Option<Window<'_>>> {
        let sp = self.sp();
        let num = sp.num_slices();
        if self.next_slice >= num {
            return Ok(None);
        }
        let lo = self.next_slice;
        let hi = window_extent(&sp.offsets, lo, self.cap);
        let start = sp.offsets[lo];
        let len = sp.offsets[hi] - start;
        let k = sp.other_count;
        let b = &mut self.buf;
        b.offsets.clear();
        b.offsets
            .extend(sp.offsets[lo..=hi].iter().map(|&o| o - start));
        b.values.resize(len, 0.0);
        self.file
            .read_f64s(sp.values_off + start as u64 * 8, &mut b.values)?;
        b.others.resize(len * k, 0);
        self.file
            .read_u32s(sp.others_off + start as u64 * k as u64 * 4, &mut b.others)?;
        b.entry_ids.resize(len, 0);
        self.file
            .read_u32s(sp.ids_off + start as u64 * 4, &mut b.entry_ids)?;
        self.next_slice = hi;
        Ok(Some(Window {
            slices: lo..hi,
            base: start,
            stream: &self.buf,
        }))
    }

    /// Like [`SliceWindows::next_window`], but reads **only the entry-id
    /// section** of the next window — for consumers that map stream
    /// positions to COO entries without touching values or packed
    /// indices (the spilled `Pres` table's build and rescale sweeps),
    /// cutting their scratch-file read volume to the 4 bytes per
    /// position they actually use.
    ///
    /// Shares the sweep cursor with `next_window`: a sweep must use one
    /// of the two consistently between rewinds.
    ///
    /// # Errors
    /// [`TensorError::Io`] if reading the scratch file fails.
    pub fn next_ids_window(&mut self) -> Result<Option<IdsWindow<'_>>> {
        let sp = self.sp();
        let num = sp.num_slices();
        if self.next_slice >= num {
            return Ok(None);
        }
        let lo = self.next_slice;
        let hi = window_extent(&sp.offsets, lo, self.cap);
        let start = sp.offsets[lo];
        let len = sp.offsets[hi] - start;
        let b = &mut self.buf;
        b.entry_ids.resize(len, 0);
        self.file
            .read_u32s(sp.ids_off + start as u64 * 4, &mut b.entry_ids)?;
        self.next_slice = hi;
        Ok(Some(IdsWindow {
            slices: lo..hi,
            base: start,
            entry_ids: &b.entry_ids,
        }))
    }

    /// The most positions any window of any mode can hold:
    /// the capacity, or a single oversized slice. Consumers sizing
    /// per-position side buffers (e.g. the spilled `Pres` tile) should
    /// use this, not [`SliceWindows::capacity`], so no window ever
    /// reallocates them mid-sweep.
    pub fn max_window_positions(&self) -> usize {
        let max_slice = self
            .modes
            .iter()
            .map(|m| m.max_slice_len)
            .max()
            .unwrap_or(0);
        self.cap.max(max_slice)
    }

    /// Restarts the sweep on `mode`'s first window, reusing the pinned
    /// buffer — how one sweeper serves every mode of a whole fit.
    pub fn rewind(&mut self, mode: usize) {
        assert!(mode < self.modes.len(), "mode {mode} out of range");
        self.mode = mode;
        self.buf.mode = mode;
        self.next_slice = 0;
    }

    /// Rewinds to the current mode's first window (the pinned buffer is
    /// kept).
    pub fn reset(&mut self) {
        self.next_slice = 0;
    }

    /// Number of windows a full sweep of the current mode takes (no I/O).
    pub fn window_count(&self) -> usize {
        self.sp().window_count(self.cap)
    }

    /// The window capacity in stream positions.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseTensor {
        SparseTensor::new(
            vec![3, 2, 2],
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 1, 1], 2.0),
                (vec![1, 0, 1], 3.0),
                (vec![2, 1, 0], 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn stream_matches_coo_slice_order() {
        let x = sample();
        let plan = ModeStreams::build(&x).unwrap();
        for n in 0..x.order() {
            let s = plan.mode(n);
            assert_eq!(s.mode(), n);
            assert_eq!(s.num_slices(), x.dims()[n]);
            assert_eq!(s.other_count(), x.order() - 1);
            for i in 0..x.dims()[n] {
                let range = s.slice_range(i);
                assert_eq!(range.len(), x.slice(n, i).len());
                assert_eq!(s.slice_len(i), x.slice_len(n, i));
                for (p, &e) in range.zip(x.slice(n, i)) {
                    assert_eq!(s.entry_id(p), e, "in-slice COO order preserved");
                    assert_eq!(s.values()[p], x.value(e));
                    let full = x.index(e);
                    let mut slot = 0;
                    for (k, &ik) in full.iter().enumerate() {
                        if k == n {
                            continue;
                        }
                        assert_eq!(s.others(p)[slot] as usize, ik, "mode {n} pos {p}");
                        slot += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn entry_ids_are_a_permutation() {
        let x = sample();
        let plan = ModeStreams::build(&x).unwrap();
        for n in 0..x.order() {
            let s = plan.mode(n);
            let mut seen = vec![false; x.nnz()];
            for p in 0..x.nnz() {
                let e = s.entry_id(p);
                assert!(!seen[e]);
                seen[e] = true;
                assert_eq!(s.position_of(e), p, "inverse map round-trips");
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn bytes_estimate_is_positive_and_scales_with_order() {
        let x = sample();
        let b = ModeStreams::bytes_for(&x);
        // 3 modes × (4·8 + 2·4·4 + 2·4·4) B entries + offsets.
        assert_eq!(b, 3 * (32 + 32 + 32) + (4 + 3 + 3) * 8);
    }

    #[test]
    fn empty_tensor_streams() {
        let x = SparseTensor::new(vec![3, 3], vec![]).unwrap();
        let plan = ModeStreams::build(&x).unwrap();
        for n in 0..2 {
            let s = plan.mode(n);
            for i in 0..3 {
                assert!(s.slice_range(i).is_empty());
            }
        }
    }

    #[test]
    fn spilled_windows_reproduce_resident_streams() {
        use ptucker_memtrack::MemoryBudget;
        let x = sample();
        let budget = MemoryBudget::unlimited();
        let resident = ModeStreams::build(&x).unwrap();
        let spilled = ModeStreams::build_spilled(&x, &budget).unwrap();
        assert!(spilled.is_spilled() && !resident.is_spilled());
        assert_eq!(budget.spilled_in_use(), ModeStreams::spilled_bytes_for(&x));
        assert_eq!(budget.in_use(), ModeStreams::resident_bytes_for(&x));
        for n in 0..x.order() {
            let full = resident.mode(n);
            let sp = spilled.spilled_mode(n);
            assert_eq!(sp.len(), x.nnz());
            for e in 0..x.nnz() {
                assert_eq!(sp.position_of(e), full.position_of(e));
            }
            // Tiny capacity: every window is exactly one slice.
            let mut w = spilled.windows(n, 1);
            assert_eq!(w.window_count(), x.dims()[n]);
            let mut covered = 0;
            while let Some(win) = w.next_window().unwrap() {
                assert_eq!(win.slices.len(), 1);
                let i = win.slices.start;
                assert_eq!(win.base, full.slice_range(i).start);
                let local = win.stream.slice_range(0);
                assert_eq!(local.len(), full.slice_len(i));
                for p in local {
                    let g = win.base + p;
                    assert_eq!(win.stream.values()[p], full.values()[g]);
                    assert_eq!(win.stream.entry_id(p), full.entry_id(g));
                    assert_eq!(win.stream.others(p), full.others(g));
                }
                covered += win.stream.values().len();
            }
            assert_eq!(covered, x.nnz());
        }
    }

    #[test]
    fn oversized_slice_becomes_singleton_window() {
        use ptucker_memtrack::MemoryBudget;
        // Mode 0 slice 0 holds 3 entries — above a capacity of 2 — and must
        // still be taken whole (windows never split slices).
        let x = SparseTensor::new(
            vec![2, 4],
            vec![
                (vec![0, 0], 1.0),
                (vec![0, 1], 2.0),
                (vec![0, 3], 3.0),
                (vec![1, 2], 4.0),
            ],
        )
        .unwrap();
        let plan = ModeStreams::build_spilled(&x, &MemoryBudget::unlimited()).unwrap();
        let mut w = plan.windows(0, 2);
        let first = w.next_window().unwrap().unwrap();
        assert_eq!(first.slices, 0..1);
        assert_eq!(first.stream.values(), &[1.0, 2.0, 3.0]);
        let second = w.next_window().unwrap().unwrap();
        assert_eq!(second.slices, 1..2);
        assert_eq!(second.stream.values(), &[4.0]);
        assert!(w.next_window().unwrap().is_none());
        // Empty slices merge into neighbours under a large capacity.
        let mut w = plan.windows(1, 100);
        let all = w.next_window().unwrap().unwrap();
        assert_eq!(all.slices, 0..4);
        assert_eq!(all.stream.num_slices(), 4);
        assert!(w.next_window().unwrap().is_none());
    }

    #[test]
    fn window_reset_replays_the_sweep() {
        use ptucker_memtrack::MemoryBudget;
        let x = sample();
        let plan = ModeStreams::build_spilled(&x, &MemoryBudget::unlimited()).unwrap();
        let mut w = plan.windows(0, 2);
        let first: Vec<f64> = w.next_window().unwrap().unwrap().stream.values().to_vec();
        while w.next_window().unwrap().is_some() {}
        w.reset();
        let again: Vec<f64> = w.next_window().unwrap().unwrap().stream.values().to_vec();
        assert_eq!(first, again);
    }

    #[test]
    fn spilled_empty_tensor() {
        use ptucker_memtrack::MemoryBudget;
        let x = SparseTensor::new(vec![3, 3], vec![]).unwrap();
        let plan = ModeStreams::build_spilled(&x, &MemoryBudget::unlimited()).unwrap();
        let mut w = plan.windows(0, 10);
        let win = w.next_window().unwrap().unwrap();
        assert_eq!(win.slices, 0..3);
        assert!(win.stream.values().is_empty());
        assert!(w.next_window().unwrap().is_none());
    }

    #[test]
    fn order_one_tensor_has_empty_others() {
        let x = SparseTensor::new(vec![4], vec![(vec![1], 2.0), (vec![3], 5.0)]).unwrap();
        let plan = ModeStreams::build(&x).unwrap();
        let s = plan.mode(0);
        assert_eq!(s.other_count(), 0);
        assert_eq!(s.values(), &[2.0, 5.0]);
        assert!(s.others(0).is_empty());
        assert!(s.others(1).is_empty());
    }
}
