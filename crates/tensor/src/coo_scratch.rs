//! On-disk COO storage: the disk-to-disk fit's *source* format.
//!
//! A [`CooScratch`] holds a sparse tensor's raw entries in an unlinked
//! [`ScratchFile`](ptucker_memtrack::ScratchFile) instead of RAM: one
//! fixed-stride record per entry — the `N` mode indices as little-endian
//! `u32`s (ascending mode order) followed by the value as a little-endian
//! `f64`. Values stay `f64` here regardless of the fit's storage
//! precision: quantization happens exactly once, when a plan is built
//! (`ModeStreams::build*` rounds at ingest), so an external-sort build
//! from this file reproduces the resident build bit for bit.
//!
//! Entries live in *input order* — the same order a resident
//! [`SparseTensor`](crate::SparseTensor) numbers its entry ids — so every
//! consumer that walks a [`CooSegments`] cursor front to back visits
//! entries in ascending entry-id order and can reproduce COO-ordered
//! passes (error sweeps, fingerprints, stream builds) without ever
//! materializing the tensor.
//!
//! The write path ([`CooScratchWriter`]) holds one bounded append buffer;
//! the read path ([`CooSegments`]) holds one bounded segment buffer. Peak
//! resident memory for a disk→disk ingest is therefore a constant, not a
//! function of `|Ω|`.

use crate::{Result, SparseTensor, TensorError};
use ptucker_memtrack::{MemoryBudget, ScratchFile, SpillReservation};
use std::sync::Arc;

/// Bytes of one on-disk COO record for an order-`N` tensor: `N` packed
/// `u32` indices plus the `f64` value.
pub fn coo_record_bytes(order: usize) -> usize {
    order * 4 + 8
}

/// Append-buffer capacity of a [`CooScratchWriter`], in bytes. One flush
/// per ~256 KiB keeps syscall counts low while bounding the writer's
/// resident footprint to a constant.
const WRITE_BUF_BYTES: usize = 256 << 10;

/// A sparse tensor stored as raw COO records in an unlinked scratch file.
/// Built by [`CooScratchWriter`] (streaming ingest) or
/// [`CooScratch::from_tensor`] (spilling a resident tensor); consumed by
/// [`CooScratch::segments`] and `ModeStreams::build_external`.
#[derive(Debug)]
pub struct CooScratch {
    pub(crate) file: Arc<ScratchFile>,
    dims: Vec<usize>,
    nnz: usize,
    /// Keeps the on-disk bytes visible to the budget's spill meter for the
    /// source's lifetime (present when the writer was given a budget).
    _spill: Option<SpillReservation>,
}

impl CooScratch {
    /// Spills a resident tensor's entries to a new scratch file, in entry-id
    /// order. Mostly for tests and examples — the point of the format is
    /// ingest paths that never build the [`SparseTensor`] at all.
    ///
    /// # Errors
    /// [`TensorError::Io`] on scratch-file I/O failure, or any
    /// [`CooScratchWriter`] validation error.
    pub fn from_tensor(x: &SparseTensor, budget: &MemoryBudget) -> Result<Self> {
        let mut w = CooScratchWriter::create(x.dims().to_vec(), budget)?;
        for e in 0..x.nnz() {
            w.push(x.index(e), x.value(e))?;
        }
        w.finish()
    }

    /// The tensor's dimensionalities.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Total on-disk bytes of the record section.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.nnz as u64 * coo_record_bytes(self.order()) as u64
    }

    /// Resident bytes a [`CooSegments`] cursor of `max_entries` entries
    /// pins: the raw staging chunk plus the decoded index/value arrays.
    pub fn segment_bytes(&self, max_entries: usize) -> usize {
        let n = max_entries.max(1);
        n * coo_record_bytes(self.order()) + n * self.order() * 4 + n * 8
    }

    /// A segment cursor over the entries in ascending entry-id order, at
    /// most `max_entries` entries resident at a time.
    pub fn segments(&self, max_entries: usize) -> CooSegments<'_> {
        self.segments_range(0..self.nnz, max_entries)
    }

    /// A segment cursor restricted to entries `range` (clamped to the
    /// stored entry count) — the substrate of block-parallel streamed
    /// passes, where each worker folds one contiguous entry block through
    /// its own cursor. Entry ids still ascend within the cursor.
    pub fn segments_range(
        &self,
        range: std::ops::Range<usize>,
        max_entries: usize,
    ) -> CooSegments<'_> {
        let start = range.start.min(self.nnz);
        let end = range.end.min(self.nnz).max(start);
        let n = max_entries.max(1).min((end - start).max(1));
        CooSegments {
            src: self,
            max_entries: n,
            start,
            next: start,
            end,
            raw: Vec::new(),
            indices: Vec::with_capacity(n * self.order()),
            values: Vec::with_capacity(n),
        }
    }
}

/// Streaming writer for a [`CooScratch`]: entries are validated, packed
/// into one bounded buffer and flushed to the scratch file in order.
#[derive(Debug)]
pub struct CooScratchWriter {
    file: ScratchFile,
    dims: Vec<usize>,
    buf: Vec<u8>,
    written: usize,
    budget: MemoryBudget,
}

impl CooScratchWriter {
    /// Opens a new scratch file for an order-`dims.len()` tensor. The
    /// file's I/O traffic is reported to `budget`'s counters and its final
    /// size to the spill meter.
    ///
    /// # Errors
    /// [`TensorError::InvalidDims`] if `dims` is empty or any
    /// dimensionality exceeds the packed-index `u32` width;
    /// [`TensorError::Io`] if the scratch file cannot be created.
    pub fn create(dims: Vec<usize>, budget: &MemoryBudget) -> Result<Self> {
        if dims.is_empty() {
            return Err(TensorError::InvalidDims(
                "a COO scratch tensor needs at least one mode".into(),
            ));
        }
        if let Some(&d) = dims.iter().find(|&&d| d > u32::MAX as usize) {
            return Err(TensorError::InvalidDims(format!(
                "dimensionality {d} exceeds the COO record's u32 index width"
            )));
        }
        let file = ScratchFile::create_tracked(budget)?;
        Ok(CooScratchWriter {
            file,
            dims,
            buf: Vec::with_capacity(WRITE_BUF_BYTES),
            written: 0,
            budget: budget.clone(),
        })
    }

    /// Number of entries pushed so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.written + self.buf.len() / coo_record_bytes(self.dims.len())
    }

    /// Whether no entry has been pushed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one entry. Entries are stored in push order, which becomes
    /// the tensor's entry-id order.
    ///
    /// # Errors
    /// [`TensorError::InvalidDims`] on an index of the wrong arity, out of
    /// bounds, or when the entry count would exceed the `u32` entry-id
    /// width; [`TensorError::Io`] on a flush failure.
    pub fn push(&mut self, idx: &[usize], value: f64) -> Result<()> {
        if idx.len() != self.dims.len() {
            return Err(TensorError::InvalidDims(format!(
                "index arity {} does not match order {}",
                idx.len(),
                self.dims.len()
            )));
        }
        for (k, (&i, &d)) in idx.iter().zip(&self.dims).enumerate() {
            if i >= d {
                return Err(TensorError::InvalidDims(format!(
                    "index {i} out of bounds for mode {k} (dim {d})"
                )));
            }
        }
        if self.len() >= u32::MAX as usize {
            return Err(TensorError::InvalidDims(
                "entry count exceeds the streamed layout's u32 entry-id width".into(),
            ));
        }
        for &i in idx {
            self.buf.extend_from_slice(&(i as u32).to_le_bytes());
        }
        self.buf.extend_from_slice(&value.to_le_bytes());
        if self.buf.len() >= WRITE_BUF_BYTES {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let stride = coo_record_bytes(self.dims.len());
        self.file
            .write_bytes(self.written as u64 * stride as u64, &self.buf)?;
        self.written += self.buf.len() / stride;
        self.buf.clear();
        Ok(())
    }

    /// Flushes the tail and seals the file into a readable [`CooScratch`].
    ///
    /// # Errors
    /// [`TensorError::Io`] on the final flush.
    pub fn finish(mut self) -> Result<CooScratch> {
        self.flush()?;
        let spill = self.budget.record_spill(self.file.len() as usize);
        Ok(CooScratch {
            file: Arc::new(self.file),
            dims: self.dims,
            nnz: self.written,
            _spill: Some(spill),
        })
    }
}

/// A bounded cursor over a [`CooScratch`]'s entries: each
/// [`CooSegments::next_segment`] call decodes the next run of at most
/// `max_entries` records into pinned buffers. Entry ids ascend across the
/// whole sweep, so segment-by-segment passes reproduce COO-ordered walks.
#[derive(Debug)]
pub struct CooSegments<'a> {
    src: &'a CooScratch,
    max_entries: usize,
    /// First entry id of the cursor's range.
    start: usize,
    /// Entry id of the next segment's first record.
    next: usize,
    /// One past the last entry id of the cursor's range.
    end: usize,
    raw: Vec<u8>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl<'a> CooSegments<'a> {
    /// Restarts the cursor at the first entry of its range (buffers kept).
    pub fn rewind(&mut self) {
        self.next = self.start;
    }

    /// Decodes the next segment, or `None` after the range's last entry.
    ///
    /// # Errors
    /// [`TensorError::Io`] if reading the scratch file fails.
    pub fn next_segment(&mut self) -> Result<Option<CooSegment<'_>>> {
        if self.next >= self.end {
            return Ok(None);
        }
        let order = self.src.order();
        let stride = coo_record_bytes(order);
        let base = self.next;
        let count = self.max_entries.min(self.end - base);
        self.raw.resize(count * stride, 0);
        self.src
            .file
            .read_bytes(base as u64 * stride as u64, &mut self.raw)?;
        self.indices.clear();
        self.values.clear();
        for rec in self.raw.chunks_exact(stride) {
            for k in 0..order {
                self.indices.push(u32::from_le_bytes(
                    rec[k * 4..k * 4 + 4].try_into().expect("4-byte field"),
                ));
            }
            self.values.push(f64::from_le_bytes(
                rec[order * 4..].try_into().expect("8-byte field"),
            ));
        }
        self.next = base + count;
        Ok(Some(CooSegment {
            base,
            order,
            indices: &self.indices,
            values: &self.values,
        }))
    }
}

/// One decoded segment of a [`CooScratch`]: entries `base..base + len`,
/// indices packed flat with stride `order`.
#[derive(Debug, Clone, Copy)]
pub struct CooSegment<'a> {
    /// Entry id of the segment's first record.
    pub base: usize,
    order: usize,
    indices: &'a [u32],
    values: &'a [f64],
}

impl<'a> CooSegment<'a> {
    /// Number of entries in the segment.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the segment holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The multi-index of segment-local entry `i` (global entry
    /// `base + i`), as packed `u32`s in ascending mode order.
    #[inline]
    pub fn index(&self, i: usize) -> &'a [u32] {
        &self.indices[i * self.order..(i + 1) * self.order]
    }

    /// The value of segment-local entry `i`.
    #[inline]
    pub fn value(&self, i: usize) -> f64 {
        self.values[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseTensor {
        SparseTensor::new(
            vec![3, 2, 2],
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 1, 1], 2.0),
                (vec![1, 0, 1], 3.0),
                (vec![2, 1, 0], 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_entry_order_and_bits() {
        let x = sample();
        let budget = MemoryBudget::unlimited();
        let s = CooScratch::from_tensor(&x, &budget).unwrap();
        assert_eq!(s.dims(), x.dims());
        assert_eq!(s.nnz(), x.nnz());
        assert_eq!(s.bytes(), x.nnz() as u64 * (3 * 4 + 8));
        assert_eq!(budget.spilled_in_use(), s.bytes() as usize);
        for max in [1, 3, 100] {
            let mut cur = s.segments(max);
            let mut e = 0;
            while let Some(seg) = cur.next_segment().unwrap() {
                assert_eq!(seg.base, e);
                for i in 0..seg.len() {
                    let idx: Vec<usize> = seg.index(i).iter().map(|&v| v as usize).collect();
                    assert_eq!(idx, x.index(e), "entry {e}");
                    assert_eq!(seg.value(i).to_bits(), x.value(e).to_bits());
                    e += 1;
                }
            }
            assert_eq!(e, x.nnz(), "max_entries={max}");
            // Rewind replays from entry 0.
            cur.rewind();
            let again = cur.next_segment().unwrap().unwrap();
            assert_eq!(again.base, 0);
        }
    }

    #[test]
    fn writer_validates_arity_bounds_and_dims() {
        let budget = MemoryBudget::unlimited();
        assert!(CooScratchWriter::create(vec![], &budget).is_err());
        let mut w = CooScratchWriter::create(vec![2, 3], &budget).unwrap();
        assert!(w.is_empty());
        assert!(w.push(&[0], 1.0).is_err(), "wrong arity");
        assert!(w.push(&[2, 0], 1.0).is_err(), "out of bounds");
        w.push(&[1, 2], 0.5).unwrap();
        assert_eq!(w.len(), 1);
        let s = w.finish().unwrap();
        assert_eq!(s.nnz(), 1);
        let mut cur = s.segments(8);
        let seg = cur.next_segment().unwrap().unwrap();
        assert_eq!(seg.index(0), &[1, 2]);
        assert_eq!(seg.value(0), 0.5);
    }

    #[test]
    fn large_stream_crosses_flush_boundaries() {
        // More than one WRITE_BUF_BYTES flush and several read segments.
        let budget = MemoryBudget::unlimited();
        let n = WRITE_BUF_BYTES / coo_record_bytes(2) + 777;
        let mut w = CooScratchWriter::create(vec![1 << 20, 7], &budget).unwrap();
        for e in 0..n {
            w.push(&[e, e % 7], e as f64 * 0.25 - 3.0).unwrap();
        }
        let s = w.finish().unwrap();
        assert_eq!(s.nnz(), n);
        let mut cur = s.segments(1000);
        let mut e = 0usize;
        while let Some(seg) = cur.next_segment().unwrap() {
            for i in 0..seg.len() {
                assert_eq!(seg.index(i), &[e as u32, (e % 7) as u32]);
                assert_eq!(seg.value(i), e as f64 * 0.25 - 3.0);
                e += 1;
            }
        }
        assert_eq!(e, n);
    }

    #[test]
    fn empty_scratch_yields_no_segments() {
        let budget = MemoryBudget::unlimited();
        let w = CooScratchWriter::create(vec![4, 4], &budget).unwrap();
        let s = w.finish().unwrap();
        assert_eq!(s.nnz(), 0);
        assert!(s.segments(16).next_segment().unwrap().is_none());
    }

    #[test]
    fn ranged_cursors_partition_the_sweep() {
        let budget = MemoryBudget::unlimited();
        let mut w = CooScratchWriter::create(vec![64, 8], &budget).unwrap();
        let n = 57usize;
        for e in 0..n {
            w.push(&[e, e % 8], e as f64 + 0.5).unwrap();
        }
        let s = w.finish().unwrap();
        // Split points mid-segment, at boundaries, and degenerate ranges.
        for (lo, hi) in [(0, 57), (0, 29), (29, 57), (13, 13), (50, 200)] {
            let mut cur = s.segments_range(lo..hi, 10);
            let mut e = lo.min(n);
            while let Some(seg) = cur.next_segment().unwrap() {
                assert_eq!(seg.base, e);
                for i in 0..seg.len() {
                    assert_eq!(seg.index(i)[0], e as u32);
                    assert_eq!(seg.value(i), e as f64 + 0.5);
                    e += 1;
                }
            }
            assert_eq!(e, hi.min(n), "range {lo}..{hi}");
            cur.rewind();
            if lo.min(n) < hi.min(n) {
                assert_eq!(cur.next_segment().unwrap().unwrap().base, lo);
            } else {
                assert!(cur.next_segment().unwrap().is_none());
            }
        }
    }
}
