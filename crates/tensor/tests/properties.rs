//! Property-based tests of the tensor substrate: index algebra, I/O
//! round-trips, core truncation invariants, and the mode-product identity
//! that underpins the QR core update.

use proptest::prelude::*;
use ptucker_linalg::Matrix;
use ptucker_tensor::{
    read_tsv, write_tsv, CoreTensor, DenseTensor, ModeStreams, SparseTensor, TrainTestSplit,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_sparse() -> impl Strategy<Value = SparseTensor> {
    (2..=4usize).prop_flat_map(|order| {
        proptest::collection::vec(2..7usize, order).prop_flat_map(move |dims| {
            let max_nnz = dims.iter().product::<usize>().min(30);
            proptest::collection::vec(
                (
                    proptest::collection::vec(0..100usize, dims.len()),
                    -9.0..9.0f64,
                ),
                1..=max_nnz,
            )
            .prop_map(move |raw| {
                let mut map = std::collections::HashMap::new();
                for (idx, v) in raw {
                    let idx: Vec<usize> = idx.iter().zip(&dims).map(|(i, d)| i % d).collect();
                    map.insert(idx, v);
                }
                SparseTensor::new(dims.clone(), map.into_iter().collect()).unwrap()
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn tsv_roundtrip_preserves_everything(x in arb_sparse(), tag in 0u64..1_000_000) {
        let dir = std::env::temp_dir().join("ptucker-tensor-proptests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t{tag}.tsv"));
        write_tsv(&path, &x).unwrap();
        let y = read_tsv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(y.nnz(), x.nnz());
        prop_assert_eq!(y.order(), x.order());
        // Dims may shrink if trailing indices are unobserved; every read
        // dim is bounded by the original.
        for (dy, dx) in y.dims().iter().zip(x.dims()) {
            prop_assert!(dy <= dx);
        }
        for e in 0..x.nnz() {
            prop_assert_eq!(y.index(e), x.index(e));
            prop_assert!((y.value(e) - x.value(e)).abs() < 1e-12);
        }
    }

    #[test]
    fn split_partitions_and_preserves_norm(x in arb_sparse(), frac in 0.0..0.9f64, seed in 0u64..100) {
        prop_assume!(x.nnz() >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = TrainTestSplit::new(&x, frac, &mut rng).unwrap();
        prop_assert_eq!(s.train.nnz() + s.test.nnz(), x.nnz());
        let total2 = s.train.frobenius_norm().powi(2) + s.test.frobenius_norm().powi(2);
        prop_assert!((total2 - x.frobenius_norm().powi(2)).abs() < 1e-9 * (1.0 + total2));
    }

    #[test]
    fn core_dense_roundtrip_and_retain(dims in proptest::collection::vec(2..5usize, 2..4), seed in 0u64..100, keep_mod in 2usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = CoreTensor::random_dense(dims.clone(), &mut rng).unwrap();
        let before = g.to_dense().unwrap();
        let nnz0 = g.nnz();
        g.retain_by_id(|e| e % keep_mod == 0);
        prop_assert_eq!(g.nnz(), nnz0.div_ceil(keep_mod));
        // Every retained entry keeps its original value.
        let after = g.to_dense().unwrap();
        for (a, b) in after.as_slice().iter().zip(before.as_slice()) {
            prop_assert!(*a == 0.0 || (a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn core_mode_product_matches_dense_tensor_product(
        dims in proptest::collection::vec(2..4usize, 2..4),
        seed in 0u64..100,
        mode_pick in 0usize..10,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = CoreTensor::random_dense(dims.clone(), &mut rng).unwrap();
        let mode = mode_pick % dims.len();
        let j = dims[mode];
        let m = Matrix::from_vec(
            j,
            j,
            (0..j * j).map(|k| ((k * 7 + 3) % 11) as f64 - 5.0).collect(),
        )
        .unwrap();
        let expect = g.to_dense().unwrap().mode_product(mode, &m).unwrap();
        g.mode_product_in_place(mode, &m, 0.0).unwrap();
        let got = g.to_dense().unwrap();
        for (a, b) in got.as_slice().iter().zip(expect.as_slice()) {
            prop_assert!((a - b).abs() < 1e-10 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn dense_mode_product_preserves_contraction_identity(
        dims in proptest::collection::vec(2..4usize, 2..3),
    ) {
        // Contracting with a row of ones sums the mode: the result's total
        // sum equals the original total sum.
        let t = DenseTensor::from_fn(dims.clone(), |i| {
            i.iter().map(|&v| v as f64 + 0.5).product()
        })
        .unwrap();
        for (n, &dim_n) in dims.iter().enumerate() {
            let ones = Matrix::from_vec(1, dim_n, vec![1.0; dim_n]).unwrap();
            let contracted = t.mode_product(n, &ones).unwrap();
            let s1: f64 = t.as_slice().iter().sum();
            let s2: f64 = contracted.as_slice().iter().sum();
            prop_assert!((s1 - s2).abs() < 1e-9 * (1.0 + s1.abs()));
        }
    }

    #[test]
    fn subset_of_all_ids_is_identity(x in arb_sparse()) {
        let ids: Vec<usize> = (0..x.nnz()).collect();
        let y = x.subset(&ids).unwrap();
        prop_assert_eq!(y.nnz(), x.nnz());
        for e in 0..x.nnz() {
            prop_assert_eq!(y.index(e), x.index(e));
            prop_assert_eq!(y.value(e), x.value(e));
        }
    }

    #[test]
    fn core_constructors_and_mutations_preserve_lex_order(
        dims in proptest::collection::vec(1..5usize, 1..5),
        raw in proptest::collection::vec(
            (proptest::collection::vec(0..100usize, 8), -5.0..5.0f64),
            1..25,
        ),
        keep_mod in 2usize..4,
        seed in 0u64..100,
    ) {
        // The CoreTensor type contract: every constructor establishes
        // strictly ascending lexicographic entry order (from_entries even
        // from shuffled input) and every mutation preserves it — the
        // invariant the run-blocked δ kernel's fast path rides on.
        let order = dims.len();
        let mut cells = std::collections::BTreeMap::new();
        for (idx, v) in &raw {
            let idx: Vec<usize> = idx[..order]
                .iter()
                .zip(&dims)
                .map(|(i, d)| i % d)
                .collect();
            cells.insert(idx, *v);
        }
        // Deliberately feed the entries in reverse-sorted (non-lex) order.
        let entries: Vec<(Vec<usize>, f64)> = cells.into_iter().rev().collect();
        let mut g = CoreTensor::from_entries(dims.clone(), entries).unwrap();
        prop_assert!(g.is_lexicographic());
        g.retain_by_id(|e| e % keep_mod == 0);
        prop_assert!(g.is_lexicographic());
        let mut rng = StdRng::seed_from_u64(seed);
        let d = CoreTensor::random_dense(dims.clone(), &mut rng).unwrap();
        prop_assert!(d.is_lexicographic());
        prop_assert!(CoreTensor::from_dense(&d.to_dense().unwrap(), 0.0)
            .unwrap()
            .is_lexicographic());
    }

    #[test]
    fn mode_stream_is_a_permutation_of_coo(x in arb_sparse()) {
        // Every mode's stream must hold, per slice, exactly the multiset of
        // (full multi-index, value) pairs the COO slice holds — no entry
        // lost, duplicated or mis-sliced by the physical reordering.
        let plan = ModeStreams::build(&x).unwrap();
        for n in 0..x.order() {
            let s = plan.mode(n);
            prop_assert_eq!(s.num_slices(), x.dims()[n]);
            let mut streamed_total = 0usize;
            for i in 0..x.dims()[n] {
                let mut coo: Vec<(Vec<usize>, u64)> = x
                    .slice(n, i)
                    .iter()
                    .map(|&e| (x.index(e).to_vec(), x.value(e).to_bits()))
                    .collect();
                let mut streamed: Vec<(Vec<usize>, u64)> = s
                    .slice_range(i)
                    .map(|p| {
                        // Reassemble the full multi-index from the packed
                        // other-mode indices plus the slice coordinate.
                        let mut full = Vec::with_capacity(x.order());
                        let mut slot = 0;
                        for k in 0..x.order() {
                            if k == n {
                                full.push(i);
                            } else {
                                full.push(s.others(p)[slot] as usize);
                                slot += 1;
                            }
                        }
                        (full, s.value(p).to_bits())
                    })
                    .collect();
                streamed_total += streamed.len();
                coo.sort();
                streamed.sort();
                prop_assert_eq!(streamed, coo, "mode {} slice {}", n, i);
            }
            prop_assert_eq!(streamed_total, x.nnz());
        }
    }

    // Out-of-core satellite: a windowed sweep over a spilled plan covers
    // the stream *exactly* — every slice appears in exactly one window,
    // in order, window boundaries are slice-aligned, every stream
    // position is visited once with the same (value, entry id, packed
    // indices) triple the resident stream holds, and no window exceeds
    // the capacity unless it is a single oversized slice. Holds with the
    // background prefetch (double-buffered) pipeline on and off —
    // prefetching changes when bytes are read, never what they are.
    #[test]
    fn slice_windows_cover_the_stream_exactly(
        x in arb_sparse(),
        cap in 1..12usize,
        prefetch in any::<bool>(),
    ) {
        let budget = ptucker_memtrack::MemoryBudget::unlimited();
        let resident = ModeStreams::build(&x).unwrap();
        let spilled = ModeStreams::build_spilled(&x, &budget).unwrap();
        for n in 0..x.order() {
            let full = resident.mode(n);
            let mut windows = spilled.windows(n, cap, prefetch);
            let mut expected_windows = windows.window_count();
            let mut next_slice = 0usize;
            let mut next_pos = 0usize;
            while let Some(w) = windows.next_window().unwrap() {
                prop_assert!(expected_windows > 0, "more windows than planned");
                expected_windows -= 1;
                // Slice-aligned, in-order, gapless.
                prop_assert_eq!(w.slices.start, next_slice);
                prop_assert!(w.slices.end > w.slices.start);
                prop_assert_eq!(w.base, next_pos);
                let len = w.stream.values().len();
                prop_assert!(
                    len <= cap || w.slices.len() == 1,
                    "over-capacity window with {} slices",
                    w.slices.len()
                );
                // Window-local view matches the resident stream.
                prop_assert_eq!(w.stream.num_slices(), w.slices.len());
                for (local_i, i) in w.slices.clone().enumerate() {
                    let local = w.stream.slice_range(local_i);
                    prop_assert_eq!(local.len(), full.slice_len(i));
                    for p in local {
                        let g = w.base + p;
                        prop_assert_eq!(w.stream.value(p).to_bits(), full.value(g).to_bits());
                        prop_assert_eq!(w.stream.entry_id(p), full.entry_id(g));
                        prop_assert_eq!(w.stream.others(p), full.others(g));
                    }
                }
                next_slice = w.slices.end;
                next_pos += len;
            }
            prop_assert_eq!(next_slice, x.dims()[n], "every slice covered");
            prop_assert_eq!(next_pos, x.nnz(), "every position covered once");
            prop_assert_eq!(expected_windows, 0, "window_count matches the sweep");
        }
    }
}
