//! OpenMP-style data-parallel scheduling over `crossbeam` scoped threads.
//!
//! The P-Tucker paper (Section III-D) parallelizes three sections with
//! OpenMP and is explicit about the *scheduling policy* of each:
//!
//! * cache-table construction and error computation use **static**
//!   scheduling (uniform work per element), and
//! * factor-row updates use **dynamic** scheduling, because the work for row
//!   `iₙ` is proportional to `|Ω⁽ⁿ⁾ᵢₙ|`, which is heavily skewed in real
//!   tensors. Section IV-D measures dynamic scheduling to be ~1.5× faster
//!   than a naive static split on MovieLens.
//!
//! This crate reproduces both policies with safe Rust:
//!
//! * [`Schedule::Static`] assigns each of `T` workers one contiguous block,
//!   exactly like `schedule(static)`.
//! * [`Schedule::Dynamic`] lets workers pull fixed-size chunks from a shared
//!   atomic counter, exactly like `schedule(dynamic, chunk)`.
//!
//! Six entry points cover the paper's needs: [`parallel_for`] (indexed
//! side-effect-free tasks), [`parallel_reduce`] (e.g. summing squared errors)
//! and [`parallel_rows_mut`] (updating disjoint rows of a row-major matrix
//! in place, which is exactly the row-wise ALS update), plus the
//! per-thread-state variants [`parallel_rows_mut_with`] and
//! [`parallel_reduce_with`], which hand every worker a caller-owned state
//! (a scratch arena, an accumulator) so hot loops run without allocating,
//! and [`parallel_rows_mut_balanced`] — static scheduling whose contiguous
//! blocks are balanced by a per-row **weight** (`|Ω⁽ⁿ⁾ᵢ|` for the row
//! update) via [`weighted_blocks`], so skew no longer needs a dynamic
//! queue.
//!
//! ```
//! use ptucker_sched::{parallel_reduce, Schedule};
//!
//! // Sum of squares of 0..1000 on 4 threads.
//! let s = parallel_reduce(
//!     1000,
//!     4,
//!     Schedule::Dynamic { chunk: 64 },
//!     || 0u64,
//!     |acc, i| acc + (i as u64) * (i as u64),
//!     |a, b| a + b,
//! );
//! assert_eq!(s, (0..1000u64).map(|i| i * i).sum());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A dedicated background worker thread processing requests in FIFO order
/// — the I/O half of a double-buffered pipeline.
///
/// The out-of-core fit path uses one of these per windowed sweeper: the
/// main thread submits "refill this buffer from the scratch file" requests
/// and computes on the *other* buffer while the worker reads, overlapping
/// window I/O with the row sweep. The type is deliberately generic (any
/// `Send` request/response) so other producers — a future shard
/// all-reduce, asynchronous artifact writers — can reuse it.
///
/// Requests own everything they need (buffers move through the channel and
/// come back in the response), so the worker holds no borrows and the
/// thread is `'static`. Dropping the `Background` closes the request
/// channel, lets the worker drain what is in flight, and joins it.
///
/// ```
/// use ptucker_sched::Background;
///
/// let worker = Background::spawn(|x: u64| x * 2);
/// worker.submit(21).unwrap();
/// assert_eq!(worker.recv(), Some(42));
/// ```
#[derive(Debug)]
pub struct Background<Req: Send + 'static, Resp: Send + 'static> {
    tx: Option<mpsc::Sender<Req>>,
    rx: mpsc::Receiver<Resp>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl<Req: Send + 'static, Resp: Send + 'static> Background<Req, Resp> {
    /// Spawns the worker thread running `f` on every submitted request,
    /// responses delivered in submission order.
    pub fn spawn<F>(mut f: F) -> Self
    where
        F: FnMut(Req) -> Resp + Send + 'static,
    {
        let (tx, req_rx) = mpsc::channel::<Req>();
        let (resp_tx, rx) = mpsc::channel::<Resp>();
        let handle = std::thread::spawn(move || {
            while let Ok(req) = req_rx.recv() {
                // A closed response channel means the owner is gone;
                // finish quietly.
                if resp_tx.send(f(req)).is_err() {
                    break;
                }
            }
        });
        Background {
            tx: Some(tx),
            rx,
            handle: Some(handle),
        }
    }

    /// Queues a request for the worker. Returns `Err` with the request if
    /// the worker thread has died (it never does unless `f` panicked).
    pub fn submit(&self, req: Req) -> Result<(), Req> {
        match self.tx.as_ref().expect("sender lives until drop").send(req) {
            Ok(()) => Ok(()),
            Err(mpsc::SendError(req)) => Err(req),
        }
    }

    /// Blocks until the next response arrives; `None` if the worker died
    /// with requests outstanding.
    pub fn recv(&self) -> Option<Resp> {
        self.rx.recv().ok()
    }

    /// Waits up to `timeout` for the next response — the deadline-aware
    /// sibling of [`Background::recv`]. A timed-out wait leaves the
    /// response in flight: a later `recv`/`recv_timeout` still collects
    /// it, so callers can probe liveness (heartbeats) without losing the
    /// outstanding request.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> RecvTimeout<Resp> {
        match self.rx.recv_timeout(timeout) {
            Ok(resp) => RecvTimeout::Ready(resp),
            Err(mpsc::RecvTimeoutError::Timeout) => RecvTimeout::TimedOut,
            Err(mpsc::RecvTimeoutError::Disconnected) => RecvTimeout::Disconnected,
        }
    }
}

/// Outcome of a [`Background::recv_timeout`] wait.
#[derive(Debug)]
pub enum RecvTimeout<Resp> {
    /// A response arrived within the deadline.
    Ready(Resp),
    /// The deadline elapsed with the worker still running; the response
    /// (if any) is still in flight and can be collected later.
    TimedOut,
    /// The worker thread is gone and no further responses will arrive.
    Disconnected,
}

impl<Req: Send + 'static, Resp: Send + 'static> Drop for Background<Req, Resp> {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Work-distribution policy, mirroring OpenMP's `schedule` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Each thread receives one contiguous block of iterations
    /// (`schedule(static)`): lowest overhead, poor balance under skew.
    Static,
    /// Threads repeatedly claim `chunk` iterations from a shared counter
    /// (`schedule(dynamic, chunk)`): balances skewed workloads.
    Dynamic {
        /// Number of iterations claimed per steal. Must be ≥ 1; a value of
        /// 0 is treated as 1.
        chunk: usize,
    },
}

impl Schedule {
    /// The dynamic policy with a reasonable default chunk for row updates.
    pub fn dynamic() -> Self {
        Schedule::Dynamic { chunk: 8 }
    }

    /// The documented `chunk: 0 ⇒ chunk: 1` clamp, applied as a value
    /// transformation. Every consumption site in this crate normalizes its
    /// schedule through this method before partitioning work, so the clamp
    /// is enforced uniformly rather than re-implemented per entry point.
    #[inline]
    #[must_use]
    pub fn normalized(self) -> Self {
        match self {
            Schedule::Dynamic { chunk } => Schedule::Dynamic {
                chunk: chunk.max(1),
            },
            Schedule::Static => Schedule::Static,
        }
    }
}

/// Splits `n` rows into at most `t` contiguous blocks of near-equal
/// **total weight**, where `weight(i)` is the cost of row `i` (for the
/// P-Tucker row update: `|Ω⁽ⁿ⁾ᵢ|`, the row's observed-entry count).
///
/// This is the static answer to the load-imbalance problem the paper's
/// Section III-D solves with dynamic scheduling: real tensors have heavily
/// skewed slice sizes, so equal-*row-count* blocks leave some workers with
/// most of the nonzeros. Equal-*weight* blocks restore balance while
/// keeping static scheduling's zero queue contention and contiguous memory
/// walk — which is exactly what the streamed slice layout wants.
///
/// Guarantees:
/// * the returned blocks are contiguous, disjoint and cover `0..n` exactly;
/// * every block is non-empty (so there are `min(t, n)` blocks — never an
///   empty degenerate chunk);
/// * all-zero weights degrade to the equal-row-count [`static_block`]
///   partition.
pub fn weighted_blocks(n: usize, t: usize, weight: impl Fn(usize) -> usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let t = t.max(1).min(n);
    let total: usize = (0..n).map(&weight).sum();
    if total == 0 {
        return (0..t).map(|b| static_block(n, t, b)).collect();
    }
    let mut blocks = Vec::with_capacity(t);
    let mut start = 0usize;
    let mut cum = 0usize;
    for b in 0..t - 1 {
        // Cumulative-weight target for the end of block b, reached by
        // walking whole rows (so a block overshoots by at most one row).
        let target = ((b + 1) * total + t / 2) / t;
        // Leave at least one row for each of the remaining blocks.
        let max_end = n - (t - 1 - b);
        let mut end = start;
        while end < max_end && (end == start || cum < target) {
            cum += weight(end);
            end += 1;
        }
        blocks.push((start, end));
        start = end;
    }
    // The last block takes everything left (trailing zero-weight rows
    // included), which is what makes coverage exact by construction.
    blocks.push((start, n));
    blocks
}

/// Splits `n` iterations into `t` contiguous blocks of near-equal size.
/// Returns `(start, end)` for block `b`. Exposed for tests and for the
/// baselines' static partitioning.
pub fn static_block(n: usize, t: usize, b: usize) -> (usize, usize) {
    debug_assert!(t > 0 && b < t);
    let base = n / t;
    let rem = n % t;
    // First `rem` blocks get one extra element.
    let start = b * base + b.min(rem);
    let len = base + usize::from(b < rem);
    (start, (start + len).min(n))
}

/// Effective thread count: at least 1, at most `n` (no idle spawns).
fn effective_threads(threads: usize, n: usize) -> usize {
    threads.max(1).min(n.max(1))
}

/// Runs `f(i)` for every `i in 0..n` using `threads` workers under the given
/// schedule. `f` must be safe to call concurrently on distinct indices.
pub fn parallel_for<F>(n: usize, threads: usize, schedule: Schedule, f: F)
where
    F: Fn(usize) + Sync,
{
    if n == 0 {
        return;
    }
    let t = effective_threads(threads, n);
    if t == 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    match schedule.normalized() {
        Schedule::Static => {
            crossbeam::scope(|s| {
                for b in 0..t {
                    let (lo, hi) = static_block(n, t, b);
                    let f = &f;
                    s.spawn(move |_| {
                        for i in lo..hi {
                            f(i);
                        }
                    });
                }
            })
            .expect("worker panicked in parallel_for(static)");
        }
        Schedule::Dynamic { chunk } => {
            let counter = AtomicUsize::new(0);
            crossbeam::scope(|s| {
                for _ in 0..t {
                    let f = &f;
                    let counter = &counter;
                    s.spawn(move |_| loop {
                        let lo = counter.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= n {
                            break;
                        }
                        let hi = (lo + chunk).min(n);
                        for i in lo..hi {
                            f(i);
                        }
                    });
                }
            })
            .expect("worker panicked in parallel_for(dynamic)");
        }
    }
}

/// Parallel fold-then-combine over `0..n`.
///
/// Each worker folds its share with `fold` starting from `init()`; partial
/// results are merged with `combine`. This is how P-Tucker computes the
/// reconstruction error (Section III-D: "each thread computes the error
/// separately ... at the end, P-TUCKER aggregates the partial error").
pub fn parallel_reduce<T, I, F, C>(
    n: usize,
    threads: usize,
    schedule: Schedule,
    init: I,
    fold: F,
    combine: C,
) -> T
where
    T: Send,
    I: Fn() -> T + Sync,
    F: Fn(T, usize) -> T + Sync,
    C: Fn(T, T) -> T,
{
    if n == 0 {
        return init();
    }
    let t = effective_threads(threads, n);
    if t == 1 {
        let mut acc = init();
        for i in 0..n {
            acc = fold(acc, i);
        }
        return acc;
    }
    let partials: Mutex<Vec<T>> = Mutex::new(Vec::with_capacity(t));
    match schedule.normalized() {
        Schedule::Static => {
            crossbeam::scope(|s| {
                for b in 0..t {
                    let (lo, hi) = static_block(n, t, b);
                    let init = &init;
                    let fold = &fold;
                    let partials = &partials;
                    s.spawn(move |_| {
                        let mut acc = init();
                        for i in lo..hi {
                            acc = fold(acc, i);
                        }
                        partials.lock().push(acc);
                    });
                }
            })
            .expect("worker panicked in parallel_reduce(static)");
        }
        Schedule::Dynamic { chunk } => {
            let counter = AtomicUsize::new(0);
            crossbeam::scope(|s| {
                for _ in 0..t {
                    let init = &init;
                    let fold = &fold;
                    let partials = &partials;
                    let counter = &counter;
                    s.spawn(move |_| {
                        let mut acc = init();
                        loop {
                            let lo = counter.fetch_add(chunk, Ordering::Relaxed);
                            if lo >= n {
                                break;
                            }
                            let hi = (lo + chunk).min(n);
                            for i in lo..hi {
                                acc = fold(acc, i);
                            }
                        }
                        partials.lock().push(acc);
                    });
                }
            })
            .expect("worker panicked in parallel_reduce(dynamic)");
        }
    }
    partials.into_inner().into_iter().fold(init(), combine)
}

/// Updates the rows of a row-major matrix in parallel and in place.
///
/// `data` is interpreted as `data.len() / row_len` rows of length `row_len`;
/// worker threads receive disjoint `&mut` row slices, so no synchronization
/// is needed inside `f`. This is the exact shape of P-Tucker's "Section 2"
/// parallelism: all rows of `A⁽ⁿ⁾` are independent of each other, so the rows
/// are distributed across threads and updated concurrently.
///
/// Under [`Schedule::Dynamic`], rows are handed out in chunks from a shared
/// queue so that skewed per-row costs stay balanced; under
/// [`Schedule::Static`] each thread takes one contiguous block of rows.
///
/// # Panics
/// Panics if `row_len == 0` or `data.len() % row_len != 0`.
pub fn parallel_rows_mut<T, F>(
    data: &mut [T],
    row_len: usize,
    threads: usize,
    schedule: Schedule,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    // Stateless rows are the `S = ()` case of the per-thread-state variant.
    let mut states = vec![(); threads.max(1)];
    parallel_rows_mut_with(
        data,
        row_len,
        threads,
        schedule,
        &mut states,
        |_, i, row| f(i, row),
    );
}

/// [`parallel_rows_mut`] with **reusable per-thread state**: worker `b`
/// receives exclusive access to `states[b]` and hands it to every row
/// closure it runs. This is the zero-allocation backbone of the P-Tucker
/// row update: the caller allocates one scratch arena per thread *once per
/// fit*, and every row of every mode of every iteration reuses them —
/// nothing is allocated inside the loop.
///
/// `states` must hold at least `min(threads, n_rows).max(1)` entries;
/// surplus entries are left untouched. Which rows fold into which state
/// depends on the schedule, so states must be combinable independent of
/// assignment (scratch buffers trivially are).
///
/// # Panics
/// Panics if `row_len == 0`, `data.len() % row_len != 0`, or `states` is
/// shorter than the effective worker count.
pub fn parallel_rows_mut_with<T, S, F>(
    data: &mut [T],
    row_len: usize,
    threads: usize,
    schedule: Schedule,
    states: &mut [S],
    f: F,
) where
    T: Send,
    S: Send,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(
        data.len() % row_len,
        0,
        "data length must be a multiple of row_len"
    );
    let n_rows = data.len() / row_len;
    if n_rows == 0 {
        return;
    }
    let t = effective_threads(threads, n_rows);
    assert!(
        states.len() >= t,
        "need at least {t} per-thread states, got {}",
        states.len()
    );
    if t == 1 {
        let state = &mut states[0];
        for (i, row) in data.chunks_mut(row_len).enumerate() {
            f(state, i, row);
        }
        return;
    }
    match schedule.normalized() {
        Schedule::Static => {
            let blocks: Vec<(usize, usize)> = (0..t).map(|b| static_block(n_rows, t, b)).collect();
            run_row_blocks(data, row_len, &blocks, states, &f);
        }
        Schedule::Dynamic { chunk } => {
            // Pre-split into chunk-sized groups of rows behind a queue.
            let mut groups: Vec<(usize, &mut [T])> = Vec::new();
            let mut rest = data;
            let mut row_cursor = 0;
            while !rest.is_empty() {
                let rows_here = chunk.min(rest.len() / row_len);
                let (head, tail) = rest.split_at_mut(rows_here * row_len);
                groups.push((row_cursor, head));
                rest = tail;
                row_cursor += rows_here;
            }
            // Reverse so pop() serves groups in ascending row order.
            groups.reverse();
            let queue = Mutex::new(groups);
            crossbeam::scope(|s| {
                for state in states.iter_mut().take(t) {
                    let f = &f;
                    let queue = &queue;
                    s.spawn(move |_| loop {
                        let next = queue.lock().pop();
                        match next {
                            Some((first_row, block)) => {
                                for (k, row) in block.chunks_mut(row_len).enumerate() {
                                    f(state, first_row + k, row);
                                }
                            }
                            None => break,
                        }
                    });
                }
            })
            .expect("worker panicked in parallel_rows_mut(dynamic)");
        }
    }
}

/// Runs one worker per pre-computed contiguous row block: the shared
/// backbone of [`parallel_rows_mut_with`]'s static arm and
/// [`parallel_rows_mut_balanced`].
fn run_row_blocks<T, S, F>(
    data: &mut [T],
    row_len: usize,
    blocks: &[(usize, usize)],
    states: &mut [S],
    f: &F,
) where
    T: Send,
    S: Send,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    let mut parts: Vec<(usize, &mut [T])> = Vec::with_capacity(blocks.len());
    let mut rest = data;
    for &(lo, hi) in blocks {
        let (head, tail) = rest.split_at_mut((hi - lo) * row_len);
        parts.push((lo, head));
        rest = tail;
    }
    crossbeam::scope(|s| {
        for ((first_row, block), state) in parts.into_iter().zip(states.iter_mut()) {
            s.spawn(move |_| {
                for (k, row) in block.chunks_mut(row_len).enumerate() {
                    f(state, first_row + k, row);
                }
            });
        }
    })
    .expect("worker panicked in run_row_blocks");
}

/// [`parallel_rows_mut_with`] under **nnz-balanced static scheduling**: rows
/// are split into contiguous blocks of near-equal total `weight` (see
/// [`weighted_blocks`]) instead of near-equal row count. For the P-Tucker
/// row update, `weight(i) = |Ω⁽ⁿ⁾ᵢ|` makes a static sweep balanced under
/// the slice-size skew of real tensors — the problem the paper's dynamic
/// scheduling exists to solve — without a shared work queue.
///
/// Worker `b` receives `states[b]` and the `b`-th block; which rows land in
/// which block depends only on the weights, so results are deterministic
/// for a given `(weights, threads)` — and, because rows are independent,
/// identical to any other schedule's.
///
/// # Panics
/// Panics if `row_len == 0`, `data.len() % row_len != 0`, or `states` is
/// shorter than the effective worker count.
pub fn parallel_rows_mut_balanced<S, F>(
    data: &mut [f64],
    row_len: usize,
    threads: usize,
    weight: impl Fn(usize) -> usize,
    states: &mut [S],
    f: F,
) where
    S: Send,
    F: Fn(&mut S, usize, &mut [f64]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(
        data.len() % row_len,
        0,
        "data length must be a multiple of row_len"
    );
    let n_rows = data.len() / row_len;
    if n_rows == 0 {
        return;
    }
    let t = effective_threads(threads, n_rows);
    assert!(
        states.len() >= t,
        "need at least {t} per-thread states, got {}",
        states.len()
    );
    if t == 1 {
        let state = &mut states[0];
        for (i, row) in data.chunks_mut(row_len).enumerate() {
            f(state, i, row);
        }
        return;
    }
    let blocks = weighted_blocks(n_rows, t, weight);
    run_row_blocks(data, row_len, &blocks, states, &f);
}

/// Schedule-dispatching row sweep: [`Schedule::Static`] routes to
/// [`parallel_rows_mut_balanced`] with the given per-row `weight`
/// (nnz-balanced contiguous blocks), [`Schedule::Dynamic`] to
/// [`parallel_rows_mut_with`]'s chunked queue. This is the one place the
/// engine-style "static means weight-balanced" policy lives, so every row
/// loop (P-Tucker, CP-ALS, …) dispatches identically.
///
/// # Panics
/// As [`parallel_rows_mut_balanced`] / [`parallel_rows_mut_with`].
pub fn parallel_rows_mut_scheduled<S, F>(
    data: &mut [f64],
    row_len: usize,
    threads: usize,
    schedule: Schedule,
    weight: impl Fn(usize) -> usize,
    states: &mut [S],
    f: F,
) where
    S: Send,
    F: Fn(&mut S, usize, &mut [f64]) + Sync,
{
    match schedule.normalized() {
        Schedule::Static => parallel_rows_mut_balanced(data, row_len, threads, weight, states, f),
        dynamic => parallel_rows_mut_with(data, row_len, threads, dynamic, states, f),
    }
}

/// Fold-only companion of [`parallel_reduce`] with **caller-provided
/// per-worker states**: worker `b` folds the indices it claims into
/// `states[b]` via `fold(&mut states[b], i)`; combining the states (and
/// reusing them across calls) is the caller's business. This is how the
/// S-HOT baseline reuses its `O(J^{N-1})` accumulators across subspace
/// sweeps instead of reallocating them per reduction.
///
/// `states` must hold at least `min(threads, n).max(1)` entries. Under
/// [`Schedule::Dynamic`] the index→state assignment is nondeterministic, so
/// per-state partial results must be combinable in any assignment (sums,
/// maxima, …); under [`Schedule::Static`] worker `b` always receives the
/// `b`-th contiguous block.
///
/// # Panics
/// Panics if `states` is shorter than the effective worker count.
pub fn parallel_reduce_with<S, F>(
    n: usize,
    threads: usize,
    schedule: Schedule,
    states: &mut [S],
    fold: F,
) where
    S: Send,
    F: Fn(&mut S, usize) + Sync,
{
    if n == 0 {
        return;
    }
    let t = effective_threads(threads, n);
    assert!(
        states.len() >= t,
        "need at least {t} per-thread states, got {}",
        states.len()
    );
    if t == 1 {
        let state = &mut states[0];
        for i in 0..n {
            fold(state, i);
        }
        return;
    }
    match schedule.normalized() {
        Schedule::Static => {
            crossbeam::scope(|s| {
                for (b, state) in states.iter_mut().take(t).enumerate() {
                    let (lo, hi) = static_block(n, t, b);
                    let fold = &fold;
                    s.spawn(move |_| {
                        for i in lo..hi {
                            fold(state, i);
                        }
                    });
                }
            })
            .expect("worker panicked in parallel_reduce_with(static)");
        }
        Schedule::Dynamic { chunk } => {
            let counter = AtomicUsize::new(0);
            crossbeam::scope(|s| {
                for state in states.iter_mut().take(t) {
                    let fold = &fold;
                    let counter = &counter;
                    s.spawn(move |_| loop {
                        let lo = counter.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= n {
                            break;
                        }
                        let hi = (lo + chunk).min(n);
                        for i in lo..hi {
                            fold(state, i);
                        }
                    });
                }
            })
            .expect("worker panicked in parallel_reduce_with(dynamic)");
        }
    }
}

/// A growable set of detached-until-joined worker threads with
/// incremental reaping — the connection-thread registry of a long-lived
/// server, where [`Background`]'s one-thread/FIFO shape does not fit.
///
/// A server accepts connections for as long as it runs; each gets its
/// own thread, and finished threads must be *joined* (not leaked) without
/// blocking the accept loop on the still-running ones. [`ThreadSet::reap`]
/// joins exactly the threads that have already exited — called once per
/// accept-loop turn it keeps the set's size proportional to the number of
/// *live* connections — and [`ThreadSet::join_all`] drains everything at
/// shutdown. Worker panics are counted, never propagated: one misbehaving
/// connection must not take the listener down.
///
/// ```
/// use ptucker_sched::ThreadSet;
///
/// let mut set = ThreadSet::new();
/// for i in 0..4 {
///     set.spawn(move || { let _ = i * i; });
/// }
/// let panicked = set.join_all();
/// assert_eq!(panicked, 0);
/// ```
#[derive(Debug, Default)]
pub struct ThreadSet {
    handles: Vec<std::thread::JoinHandle<()>>,
    panicked: usize,
}

impl ThreadSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Spawns `f` on a new thread tracked by this set.
    pub fn spawn<F: FnOnce() + Send + 'static>(&mut self, f: F) {
        self.handles.push(std::thread::spawn(f));
    }

    /// Number of threads not yet joined (running or finished-but-unreaped).
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True when every spawned thread has been joined.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Joins every thread that has already finished, without blocking on
    /// the ones still running. Returns how many were reaped. Panicked
    /// workers are absorbed into [`ThreadSet::panics`].
    pub fn reap(&mut self) -> usize {
        let before = self.handles.len();
        let mut i = 0;
        while i < self.handles.len() {
            if self.handles[i].is_finished() {
                if self.handles.swap_remove(i).join().is_err() {
                    self.panicked += 1;
                }
            } else {
                i += 1;
            }
        }
        before - self.handles.len()
    }

    /// Blocks until every tracked thread has exited and joins them all.
    /// Returns the total panic count observed over the set's lifetime.
    pub fn join_all(mut self) -> usize {
        self.drain();
        self.panicked
    }

    /// Total workers that exited by panicking, across all reaps so far.
    pub fn panics(&self) -> usize {
        self.panicked
    }

    fn drain(&mut self) {
        for h in self.handles.drain(..) {
            if h.join().is_err() {
                self.panicked += 1;
            }
        }
    }
}

impl Drop for ThreadSet {
    /// Joins any threads still tracked, so dropping the set cannot leak
    /// running workers past their owner.
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn static_block_partitions_exactly() {
        for n in [0usize, 1, 7, 16, 100, 101] {
            for t in [1usize, 2, 3, 7, 16] {
                let mut covered = vec![false; n];
                let mut prev_end = 0;
                for b in 0..t {
                    let (lo, hi) = static_block(n, t, b);
                    assert_eq!(lo, prev_end, "blocks must be contiguous");
                    prev_end = hi;
                    for slot in covered.iter_mut().take(hi).skip(lo) {
                        assert!(!*slot);
                        *slot = true;
                    }
                }
                assert_eq!(prev_end, n);
                assert!(covered.iter().all(|&c| c));
            }
        }
    }

    #[test]
    fn static_block_sizes_differ_by_at_most_one() {
        let n = 103;
        let t = 10;
        let sizes: Vec<usize> = (0..t)
            .map(|b| {
                let (lo, hi) = static_block(n, t, b);
                hi - lo
            })
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1);
        assert_eq!(sizes.iter().sum::<usize>(), n);
    }

    #[test]
    fn parallel_for_touches_every_index_once() {
        for sched in [Schedule::Static, Schedule::Dynamic { chunk: 3 }] {
            let n = 1000;
            let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            parallel_for(n, 4, sched, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn parallel_for_zero_and_single() {
        parallel_for(0, 4, Schedule::Static, |_| panic!("must not run"));
        let hit = AtomicU64::new(0);
        parallel_for(1, 8, Schedule::dynamic(), |_| {
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_reduce_matches_serial() {
        for sched in [Schedule::Static, Schedule::Dynamic { chunk: 16 }] {
            for threads in [1, 2, 4, 8] {
                let got = parallel_reduce(
                    10_000,
                    threads,
                    sched,
                    || 0.0f64,
                    |acc, i| acc + (i as f64).sqrt(),
                    |a, b| a + b,
                );
                let want: f64 = (0..10_000).map(|i| (i as f64).sqrt()).sum();
                assert!((got - want).abs() < 1e-6, "t={threads}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn parallel_reduce_empty_returns_init() {
        let got = parallel_reduce(0, 4, Schedule::Static, || 42, |a, _| a + 1, |a, b| a + b);
        assert_eq!(got, 42);
    }

    #[test]
    fn rows_mut_updates_each_row_once() {
        for sched in [Schedule::Static, Schedule::Dynamic { chunk: 2 }] {
            for threads in [1, 3, 8] {
                let rows = 37;
                let cols = 5;
                let mut data = vec![0.0; rows * cols];
                parallel_rows_mut(&mut data, cols, threads, sched, |i, row| {
                    for (j, v) in row.iter_mut().enumerate() {
                        *v += (i * cols + j) as f64;
                    }
                });
                for (k, v) in data.iter().enumerate() {
                    assert_eq!(*v, k as f64, "row data incorrect at {k}");
                }
            }
        }
    }

    #[test]
    fn rows_mut_skewed_workload_correct() {
        // Row i does work proportional to i to simulate |Ω_i| skew; verify
        // results are still exact under dynamic scheduling.
        let rows = 64;
        let mut data = vec![0.0; rows * 2];
        parallel_rows_mut(&mut data, 2, 4, Schedule::Dynamic { chunk: 1 }, |i, row| {
            let mut acc = 0.0;
            for k in 0..(i * 50) {
                acc += (k as f64).sin();
            }
            row[0] = i as f64;
            row[1] = acc;
        });
        for i in 0..rows {
            assert_eq!(data[i * 2], i as f64);
        }
    }

    #[test]
    #[should_panic(expected = "multiple of row_len")]
    fn rows_mut_bad_row_len_panics() {
        let mut data = vec![0.0; 7];
        parallel_rows_mut(&mut data, 2, 2, Schedule::Static, |_, _| {});
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let n = 3;
        let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(n, 64, Schedule::Dynamic { chunk: 10 }, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn dynamic_chunk_zero_treated_as_one() {
        let hit = AtomicU64::new(0);
        parallel_for(10, 2, Schedule::Dynamic { chunk: 0 }, |_| {
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn normalized_clamps_zero_chunk_only() {
        assert_eq!(
            Schedule::Dynamic { chunk: 0 }.normalized(),
            Schedule::Dynamic { chunk: 1 }
        );
        assert_eq!(
            Schedule::Dynamic { chunk: 7 }.normalized(),
            Schedule::Dynamic { chunk: 7 }
        );
        assert_eq!(Schedule::Static.normalized(), Schedule::Static);
    }

    /// Regression: the documented "chunk 0 is treated as 1" clamp must hold
    /// at *every* consumption site, not just `parallel_for`. A chunk of 0
    /// fed to the shared counter would spin forever (fetch_add(0) never
    /// advances), so each of these completing proves the clamp.
    #[test]
    fn dynamic_chunk_zero_clamped_at_every_entry_point() {
        let zero = Schedule::Dynamic { chunk: 0 };

        // parallel_reduce
        let sum = parallel_reduce(100, 3, zero, || 0u64, |a, i| a + i as u64, |a, b| a + b);
        assert_eq!(sum, 99 * 100 / 2);

        // parallel_rows_mut
        let mut data = vec![0.0; 20 * 3];
        parallel_rows_mut(&mut data, 3, 4, zero, |i, row| {
            row.fill(i as f64);
        });
        for i in 0..20 {
            assert_eq!(data[i * 3], i as f64);
        }

        // parallel_rows_mut_with
        let mut data = vec![0.0; 20 * 2];
        let mut states = vec![0usize; 4];
        parallel_rows_mut_with(&mut data, 2, 4, zero, &mut states, |count, i, row| {
            *count += 1;
            row.fill(i as f64 + 1.0);
        });
        assert_eq!(states.iter().sum::<usize>(), 20);
        assert!(data.iter().all(|&v| v > 0.0));

        // parallel_reduce_with
        let mut states = vec![0u64; 4];
        parallel_reduce_with(100, 4, zero, &mut states, |acc, i| *acc += i as u64);
        assert_eq!(states.iter().sum::<u64>(), 99 * 100 / 2);
    }

    #[test]
    fn rows_mut_with_reuses_states_across_calls() {
        // The engine's pattern: one pool, many sweeps, zero reallocation.
        let mut states: Vec<Vec<f64>> = (0..3).map(|_| Vec::with_capacity(8)).collect();
        let capacities: Vec<usize> = states.iter().map(Vec::capacity).collect();
        for sweep in 0..5 {
            let mut data = vec![0.0; 16 * 4];
            parallel_rows_mut_with(
                &mut data,
                4,
                3,
                Schedule::Dynamic { chunk: 2 },
                &mut states,
                |scratch, i, row| {
                    scratch.clear();
                    scratch.resize(4, i as f64);
                    row.copy_from_slice(scratch);
                },
            );
            for i in 0..16 {
                assert_eq!(data[i * 4], i as f64, "sweep {sweep}");
            }
        }
        // Buffers were reused, not regrown.
        for (s, cap) in states.iter().zip(&capacities) {
            assert_eq!(s.capacity(), *cap);
        }
    }

    #[test]
    fn rows_mut_with_static_assigns_contiguous_blocks() {
        let mut data = vec![0.0; 12 * 2];
        let mut states: Vec<Vec<usize>> = vec![Vec::new(); 3];
        parallel_rows_mut_with(
            &mut data,
            2,
            3,
            Schedule::Static,
            &mut states,
            |seen, i, _| {
                seen.push(i);
            },
        );
        let mut all: Vec<usize> = states.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
        for seen in &states {
            for w in seen.windows(2) {
                assert_eq!(w[1], w[0] + 1, "static blocks must be contiguous");
            }
        }
    }

    #[test]
    fn reduce_with_matches_parallel_reduce() {
        for sched in [Schedule::Static, Schedule::Dynamic { chunk: 16 }] {
            for threads in [1, 2, 4] {
                let want = parallel_reduce(
                    5_000,
                    threads,
                    sched,
                    || 0.0f64,
                    |acc, i| acc + (i as f64).sqrt(),
                    |a, b| a + b,
                );
                let mut states = vec![0.0f64; threads];
                parallel_reduce_with(5_000, threads, sched, &mut states, |acc, i| {
                    *acc += (i as f64).sqrt();
                });
                let got: f64 = states.iter().sum();
                assert!((got - want).abs() < 1e-6, "t={threads}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn reduce_with_zero_n_is_noop() {
        let mut states: Vec<u64> = vec![];
        parallel_reduce_with(0, 4, Schedule::Static, &mut states, |_, _| {
            panic!("must not run")
        });
    }

    #[test]
    #[should_panic(expected = "per-thread states")]
    fn rows_mut_with_too_few_states_panics() {
        let mut data = vec![0.0; 8];
        let mut states = vec![0u8; 1];
        parallel_rows_mut_with(&mut data, 2, 4, Schedule::Static, &mut states, |_, _, _| {});
    }

    #[test]
    fn weighted_blocks_cover_exactly_with_no_empty_chunks() {
        // Skewed, uniform, zero and spiky weight shapes.
        let shapes: Vec<Vec<usize>> = vec![
            (0..64).collect(),                        // linear skew
            vec![1; 37],                              // uniform
            vec![0; 12],                              // all zero
            vec![0, 0, 100, 0, 0, 0, 1, 1, 0, 0],     // one heavy row
            vec![5, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 9], // heavy ends, zero middle
        ];
        for w in shapes {
            let n = w.len();
            for t in [1usize, 2, 3, 5, 16, 64] {
                let blocks = weighted_blocks(n, t, |i| w[i]);
                assert_eq!(blocks.len(), t.min(n).max(usize::from(n > 0)));
                let mut next = 0;
                for &(lo, hi) in &blocks {
                    assert_eq!(lo, next, "blocks must be contiguous");
                    assert!(hi > lo, "empty chunk ({lo}, {hi}) for w={w:?} t={t}");
                    next = hi;
                }
                assert_eq!(next, n, "blocks must cover all rows");
            }
        }
        assert!(weighted_blocks(0, 4, |_| 1).is_empty());
    }

    #[test]
    fn weighted_blocks_balance_skewed_weights() {
        // Row i weighs i: equal-count blocks would give the last worker
        // ~7/16 of the work; weighted blocks keep every worker near 1/4.
        let n = 256;
        let total: usize = (0..n).sum();
        let blocks = weighted_blocks(n, 4, |i| i);
        // Each boundary lands within one row weight of its cumulative
        // target, so every block is within 2·max_weight of fair share.
        let fair = total / 4;
        let max_w = n - 1;
        for &(lo, hi) in &blocks {
            let w: usize = (lo..hi).sum();
            assert!(
                w <= fair + 2 * max_w && w + 2 * max_w >= fair,
                "block ({lo},{hi}) weight {w} vs fair {fair}"
            );
        }
    }

    #[test]
    fn rows_mut_balanced_matches_unweighted_results() {
        // Rows are independent, so any partition must produce identical
        // data; balanced scheduling only changes who computes what.
        let rows = 41;
        let cols = 3;
        let weights: Vec<usize> = (0..rows).map(|i| (i * 7) % 13).collect();
        for threads in [1usize, 2, 4, 8] {
            let mut a = vec![0.0; rows * cols];
            let mut b = vec![0.0; rows * cols];
            let fill = |_s: &mut (), i: usize, row: &mut [f64]| {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = (i * cols + j) as f64;
                }
            };
            let mut states = vec![(); threads];
            parallel_rows_mut_balanced(&mut a, cols, threads, |i| weights[i], &mut states, fill);
            parallel_rows_mut(&mut b, cols, threads, Schedule::Static, |i, row| {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = (i * cols + j) as f64;
                }
            });
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn rows_mut_balanced_each_row_once() {
        let rows = 29;
        let mut data = vec![0.0; rows * 2];
        let mut states = vec![0usize; 4];
        parallel_rows_mut_balanced(
            &mut data,
            2,
            4,
            |i| if i < 5 { 50 } else { 1 },
            &mut states,
            |count, i, row| {
                *count += 1;
                row.fill(i as f64 + 1.0);
            },
        );
        assert_eq!(states.iter().sum::<usize>(), rows);
        for i in 0..rows {
            assert_eq!(data[i * 2], i as f64 + 1.0);
        }
    }

    #[test]
    fn background_worker_preserves_fifo_order() {
        let worker = Background::spawn(|(buf, scale): (Vec<f64>, f64)| {
            buf.into_iter().map(|v| v * scale).collect::<Vec<f64>>()
        });
        for i in 0..16 {
            worker.submit((vec![i as f64; 4], 2.0)).unwrap();
        }
        for i in 0..16 {
            let resp = worker.recv().expect("worker alive");
            assert_eq!(resp, vec![2.0 * i as f64; 4]);
        }
    }

    #[test]
    fn background_worker_drop_with_inflight_request_joins() {
        // Dropping with an unconsumed response must not hang or panic.
        let worker = Background::spawn(|x: u32| x + 1);
        worker.submit(1).unwrap();
        drop(worker);
    }

    #[test]
    fn reduce_static_vs_dynamic_same_result() {
        let a = parallel_reduce(
            5000,
            4,
            Schedule::Static,
            || 0u64,
            |acc, i| acc + i as u64,
            |a, b| a + b,
        );
        let b = parallel_reduce(
            5000,
            4,
            Schedule::Dynamic { chunk: 7 },
            || 0u64,
            |acc, i| acc + i as u64,
            |a, b| a + b,
        );
        assert_eq!(a, b);
        assert_eq!(a, 5000u64 * 4999 / 2);
    }

    #[test]
    fn thread_set_joins_all_and_observes_effects() {
        let counter = std::sync::Arc::new(AtomicU64::new(0));
        let mut set = ThreadSet::new();
        for _ in 0..8 {
            let counter = counter.clone();
            set.spawn(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(set.join_all(), 0);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn thread_set_reaps_finished_without_blocking_on_live() {
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let mut set = ThreadSet::new();
        // One thread parked on the channel, three that exit immediately.
        set.spawn(move || {
            let _ = rx.recv();
        });
        for _ in 0..3 {
            set.spawn(|| {});
        }
        // The quick threads finish; reap must collect exactly those.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut reaped = 0;
        while reaped < 3 && std::time::Instant::now() < deadline {
            reaped += set.reap();
            std::thread::yield_now();
        }
        assert_eq!(reaped, 3);
        assert_eq!(set.len(), 1, "the parked thread must still be tracked");
        tx.send(()).unwrap();
        assert_eq!(set.join_all(), 0);
    }

    #[test]
    fn thread_set_counts_panics_instead_of_propagating() {
        let mut set = ThreadSet::new();
        set.spawn(|| panic!("worker blew up"));
        set.spawn(|| {});
        assert_eq!(set.join_all(), 1);
    }
}
