//! Property tests of the nnz-balanced partitioner: for arbitrary weight
//! vectors and thread counts, the blocks must cover every row exactly once
//! with no empty chunks, and running rows through the balanced entry point
//! must touch each row exactly once.

use proptest::prelude::*;
use ptucker_sched::{parallel_rows_mut_balanced, weighted_blocks};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn weighted_blocks_partition_rows_exactly(
        weights in proptest::collection::vec(0..40usize, 0..120),
        t in 1..20usize,
    ) {
        let n = weights.len();
        let blocks = weighted_blocks(n, t, |i| weights[i]);
        if n == 0 {
            prop_assert!(blocks.is_empty());
            return Ok(());
        }
        prop_assert_eq!(blocks.len(), t.min(n));
        let mut next = 0usize;
        for &(lo, hi) in &blocks {
            prop_assert_eq!(lo, next);
            prop_assert!(hi > lo, "empty chunk ({}, {})", lo, hi);
            next = hi;
        }
        prop_assert_eq!(next, n);
    }

    #[test]
    fn balanced_rows_touch_each_row_once(
        weights in proptest::collection::vec(0..9usize, 1..60),
        threads in 1..9usize,
    ) {
        let rows = weights.len();
        let mut data = vec![0.0f64; rows * 2];
        let mut states = vec![0usize; threads];
        parallel_rows_mut_balanced(
            &mut data,
            2,
            threads,
            |i| weights[i],
            &mut states,
            |count, i, row| {
                *count += 1;
                for v in row.iter_mut() {
                    *v += i as f64 + 1.0;
                }
            },
        );
        prop_assert_eq!(states.iter().sum::<usize>(), rows);
        for i in 0..rows {
            prop_assert_eq!(data[i * 2], i as f64 + 1.0);
            prop_assert_eq!(data[i * 2 + 1], i as f64 + 1.0);
        }
    }
}
