//! Property-based tests: the budget's accounting never leaks, never
//! exceeds the cap, and the peak is exact under arbitrary interleavings.

use proptest::prelude::*;
use ptucker_memtrack::MemoryBudget;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interleaved_reservations_account_exactly(
        ops in proptest::collection::vec((0usize..10_000, any::<bool>()), 1..60),
        budget in 1000usize..50_000,
    ) {
        let b = MemoryBudget::new(budget);
        let mut live: Vec<ptucker_memtrack::Reservation> = Vec::new();
        let mut expected_in_use = 0usize;
        let mut expected_peak = 0usize;
        for (bytes, release_first) in ops {
            if release_first && !live.is_empty() {
                let r = live.remove(0);
                expected_in_use -= r.bytes();
                drop(r);
            }
            match b.reserve(bytes) {
                Ok(r) => {
                    expected_in_use += r.bytes();
                    expected_peak = expected_peak.max(expected_in_use);
                    live.push(r);
                }
                Err(e) => {
                    // A refusal must be justified: honoring it would exceed
                    // the budget.
                    prop_assert!(expected_in_use + bytes > budget);
                    prop_assert_eq!(e.in_use, expected_in_use);
                }
            }
            prop_assert_eq!(b.in_use(), expected_in_use);
            prop_assert!(b.in_use() <= budget);
        }
        prop_assert_eq!(b.peak(), expected_peak);
        drop(live);
        prop_assert_eq!(b.in_use(), 0);
    }

    #[test]
    fn grow_is_all_or_nothing(initial in 1usize..1000, extra in 0usize..2000, budget in 500usize..1500) {
        let b = MemoryBudget::new(budget);
        prop_assume!(initial <= budget);
        let mut r = b.reserve(initial).unwrap();
        let before = b.in_use();
        match r.grow(extra) {
            Ok(()) => {
                prop_assert_eq!(b.in_use(), before + extra);
                prop_assert!(b.in_use() <= budget);
            }
            Err(_) => {
                prop_assert_eq!(b.in_use(), before);
                prop_assert!(before + extra > budget);
            }
        }
    }

    #[test]
    fn would_fit_agrees_with_reserve(bytes in 0usize..10_000, budget in 0usize..10_000) {
        let b = MemoryBudget::new(budget);
        let predicted = b.would_fit(bytes);
        let actual = b.reserve(bytes).is_ok();
        prop_assert_eq!(predicted, actual);
    }
}
