//! Intermediate-data memory metering.
//!
//! Definition 7 of the P-Tucker paper singles out *intermediate data* — the
//! memory required to update factor matrices, excluding the tensor, the core
//! and the factor matrices themselves — as the quantity that decides whether
//! a Tucker algorithm scales. Figures 6, 7 and 11 report **O.O.M.** whenever
//! a competitor's intermediate data exceed the machine's 512 GB.
//!
//! Rather than physically exhausting RAM to reproduce those boundaries, every
//! algorithm in this workspace *meters* its intermediate allocations against
//! a [`MemoryBudget`]. The arithmetic is the same as a real machine's
//! (`bytes needed > bytes available ⇒ failure`); only the failure mode is
//! polite. A budget also tracks the high-water mark, which is what Fig. 8(b)
//! and Fig. 10(b) plot.
//!
//! ```
//! use ptucker_memtrack::MemoryBudget;
//!
//! let budget = MemoryBudget::new(1 << 20); // 1 MiB
//! let g = budget.reserve_f64(1000).unwrap(); // 8 kB of intermediates
//! assert_eq!(budget.in_use(), 8000);
//! drop(g);
//! assert_eq!(budget.in_use(), 0);
//! assert_eq!(budget.peak(), 8000);
//! assert!(budget.reserve_f64(1 << 20).is_err()); // 8 MiB > 1 MiB budget
//! ```
//!
//! # Spilling: file-backed reservations
//!
//! Since the out-of-core execution path landed, exceeding the budget is no
//! longer necessarily fatal: a consumer can *spill* its data plane to a
//! [`ScratchFile`] and keep only slice-aligned windows resident. Two pieces
//! of this crate support that path:
//!
//! * [`BudgetPolicy`] records, per budget, whether overflow should spill
//!   (the default) or hard-fail like the paper's O.O.M. boundaries
//!   ([`BudgetPolicy::Strict`]). The policy does **not** change how
//!   [`MemoryBudget::reserve`] behaves — it is a contract consulted by the
//!   solver's *placement gate*, which spills only what overflows: the
//!   whole execution plan, or just a variant's auxiliary table (hybrid
//!   spilling) when the plan itself still fits.
//! * File-backed bytes are accounted separately from resident bytes:
//!   [`MemoryBudget::record_spill`] tracks them without counting against
//!   the RAM budget (disk is not the scarce resource Definition 7 is
//!   about), and [`MemoryBudget::peak_spilled`] reports their high-water
//!   mark so a fit can state exactly how much of its data plane lived on
//!   disk.
//!
//! ```
//! use ptucker_memtrack::{BudgetPolicy, MemoryBudget};
//!
//! let spill = MemoryBudget::new(1 << 10);
//! assert_eq!(spill.policy(), BudgetPolicy::Spill);
//! let s = spill.record_spill(1 << 20); // 1 MiB on disk: fine
//! assert_eq!(spill.in_use(), 0);       // …and invisible to the RAM meter
//! assert_eq!(spill.peak_spilled(), 1 << 20);
//! drop(s);
//!
//! let strict = MemoryBudget::with_policy(1 << 10, BudgetPolicy::Strict);
//! assert_eq!(strict.policy(), BudgetPolicy::Strict);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod scratch;

pub use scratch::{ScratchCorruption, ScratchFile};

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Error returned when a reservation would exceed the budget.
///
/// Mirrors the "O.O.M." entries in the paper's figures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested by the failing reservation.
    pub requested: usize,
    /// Bytes already reserved at the time of the request.
    pub in_use: usize,
    /// The configured budget in bytes.
    pub budget: usize,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory: requested {} B with {} B in use against a {} B budget",
            self.requested, self.in_use, self.budget
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// What a consumer should do when its data plane does not fit the budget.
///
/// The policy is carried by the [`MemoryBudget`] because it is a property
/// of the *reservation regime* the user configured, not of any single
/// algorithm: the same budget is threaded through the solver, its kernels
/// and the execution plan, and they must all agree on whether overflow
/// spills or fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetPolicy {
    /// Overflow spills: consumers that support an out-of-core path (the
    /// P-Tucker execution plan and the Cached variant's `Pres` table) move
    /// their data plane to a [`ScratchFile`] and keep only windows
    /// resident. This is the default since the windowed sweeps landed.
    #[default]
    Spill,
    /// Overflow is fatal: every reservation failure surfaces as the
    /// paper's O.O.M. outcome, exactly as before spilling existed. This is
    /// what the cross-method memory-boundary experiments (Figs. 6, 7, 11)
    /// use, since the competitors have no spilled mode.
    Strict,
}

#[derive(Debug)]
struct Inner {
    budget: usize,
    policy: BudgetPolicy,
    in_use: AtomicUsize,
    peak: AtomicUsize,
    spill_in_use: AtomicUsize,
    spill_peak: AtomicUsize,
    /// Cumulative bytes read back from [`ScratchFile`]s attached to this
    /// budget (see [`ScratchFile::create_tracked`]).
    io_read: AtomicU64,
    /// Cumulative bytes written to attached [`ScratchFile`]s.
    io_write: AtomicU64,
}

/// A shareable intermediate-data budget with peak tracking.
///
/// Cloning is cheap (`Arc` internally); clones share the same accounting, so
/// worker threads can reserve against the common budget.
#[derive(Debug, Clone)]
pub struct MemoryBudget {
    inner: Arc<Inner>,
}

/// Equality is configuration equality (limit and policy); the transient
/// accounting state (in-use/peak counters) is deliberately ignored, so a
/// budget round-tripped through a wire format or rebuilt from its
/// parameters compares equal to the original.
impl PartialEq for MemoryBudget {
    fn eq(&self, other: &Self) -> bool {
        self.inner.budget == other.inner.budget && self.inner.policy == other.inner.policy
    }
}

impl Eq for MemoryBudget {}

impl MemoryBudget {
    /// Creates a budget of `bytes` bytes with the default
    /// [`BudgetPolicy::Spill`] policy.
    pub fn new(bytes: usize) -> Self {
        MemoryBudget::with_policy(bytes, BudgetPolicy::default())
    }

    /// Creates a budget of `bytes` bytes with an explicit overflow policy.
    pub fn with_policy(bytes: usize, policy: BudgetPolicy) -> Self {
        MemoryBudget {
            inner: Arc::new(Inner {
                budget: bytes,
                policy,
                in_use: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                spill_in_use: AtomicUsize::new(0),
                spill_peak: AtomicUsize::new(0),
                io_read: AtomicU64::new(0),
                io_write: AtomicU64::new(0),
            }),
        }
    }

    /// An effectively unlimited budget (for tests and small runs).
    pub fn unlimited() -> Self {
        MemoryBudget::new(usize::MAX)
    }

    /// The configured limit in bytes.
    pub fn budget(&self) -> usize {
        self.inner.budget
    }

    /// What consumers should do when their data plane exceeds the budget.
    pub fn policy(&self) -> BudgetPolicy {
        self.inner.policy
    }

    /// Bytes currently reserved.
    pub fn in_use(&self) -> usize {
        self.inner.in_use.load(Ordering::Relaxed)
    }

    /// Bytes still reservable before the limit (0 when over budget, which
    /// [`MemoryBudget::reserve_unchecked`] can cause).
    pub fn available(&self) -> usize {
        self.inner.budget.saturating_sub(self.in_use())
    }

    /// High-water mark of reserved bytes since creation (or the last
    /// [`MemoryBudget::reset_peak`]).
    pub fn peak(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Bytes currently recorded as spilled to disk.
    pub fn spilled_in_use(&self) -> usize {
        self.inner.spill_in_use.load(Ordering::Relaxed)
    }

    /// High-water mark of spilled bytes since creation (or the last
    /// [`MemoryBudget::reset_peak`]).
    pub fn peak_spilled(&self) -> usize {
        self.inner.spill_peak.load(Ordering::Relaxed)
    }

    /// Resets both peak trackers to the current usage (not to zero, so
    /// live reservations stay visible).
    pub fn reset_peak(&self) {
        self.inner.peak.store(self.in_use(), Ordering::Relaxed);
        self.inner
            .spill_peak
            .store(self.spilled_in_use(), Ordering::Relaxed);
    }

    /// Reserves `bytes` bytes, failing if the budget would be exceeded.
    ///
    /// The reservation is released when the returned guard is dropped.
    ///
    /// # Errors
    /// [`OutOfMemory`] if `in_use + bytes > budget`.
    pub fn reserve(&self, bytes: usize) -> Result<Reservation, OutOfMemory> {
        let mut cur = self.inner.in_use.load(Ordering::Relaxed);
        loop {
            let new = cur.checked_add(bytes).ok_or(OutOfMemory {
                requested: bytes,
                in_use: cur,
                budget: self.inner.budget,
            })?;
            if new > self.inner.budget {
                return Err(OutOfMemory {
                    requested: bytes,
                    in_use: cur,
                    budget: self.inner.budget,
                });
            }
            match self.inner.in_use.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.peak.fetch_max(new, Ordering::Relaxed);
                    return Ok(Reservation {
                        budget: self.clone(),
                        bytes,
                    });
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Convenience: reserves space for `n` `f64` values.
    ///
    /// # Errors
    /// [`OutOfMemory`] if the implied byte count exceeds the budget.
    pub fn reserve_f64(&self, n: usize) -> Result<Reservation, OutOfMemory> {
        self.reserve(n.saturating_mul(std::mem::size_of::<f64>()))
    }

    /// Reserves `bytes` bytes **without** checking the limit. The bytes
    /// still count toward [`MemoryBudget::in_use`] and
    /// [`MemoryBudget::peak`], so the reported high-water mark stays
    /// honest even when it exceeds the configured budget.
    ///
    /// This exists for the spilled execution path's *irreducible floor*:
    /// a windowed sweep cannot hold less than one slice-aligned window
    /// (plus per-mode offsets and scratch arenas) resident, and under
    /// [`BudgetPolicy::Spill`] that floor proceeds rather than fails.
    /// Strict consumers must keep using [`MemoryBudget::reserve`].
    pub fn reserve_unchecked(&self, bytes: usize) -> Reservation {
        let new = self
            .inner
            .in_use
            .fetch_add(bytes, Ordering::Relaxed)
            .saturating_add(bytes);
        self.inner.peak.fetch_max(new, Ordering::Relaxed);
        Reservation {
            budget: self.clone(),
            bytes,
        }
    }

    /// Records `bytes` bytes written to a [`ScratchFile`] (or any other
    /// disk-backed store). Spilled bytes are tracked separately from the
    /// RAM meter — disk is not the resource Definition 7 bounds — and
    /// released when the returned guard drops.
    pub fn record_spill(&self, bytes: usize) -> SpillReservation {
        let new = self
            .inner
            .spill_in_use
            .fetch_add(bytes, Ordering::Relaxed)
            .saturating_add(bytes);
        self.inner.spill_peak.fetch_max(new, Ordering::Relaxed);
        SpillReservation {
            budget: self.clone(),
            bytes,
        }
    }

    /// Cumulative bytes read from [`ScratchFile`]s attached to this budget
    /// with [`ScratchFile::create_tracked`] — the disk-traffic half of the
    /// accounting, monotone for the budget's lifetime. Consumers that want
    /// a per-phase figure snapshot the counter before and after.
    pub fn io_read_bytes(&self) -> u64 {
        self.inner.io_read.load(Ordering::Relaxed)
    }

    /// Cumulative bytes written to attached [`ScratchFile`]s (see
    /// [`MemoryBudget::io_read_bytes`]).
    pub fn io_write_bytes(&self) -> u64 {
        self.inner.io_write.load(Ordering::Relaxed)
    }

    /// Adds `bytes` to the scratch-read counter. Called by tracked
    /// [`ScratchFile`]s; public so other disk-backed stores can account
    /// their traffic through the same meter.
    pub fn add_io_read(&self, bytes: u64) {
        self.inner.io_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Adds `bytes` to the scratch-write counter (see
    /// [`MemoryBudget::add_io_read`]).
    pub fn add_io_write(&self, bytes: u64) {
        self.inner.io_write.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Checks whether `bytes` *could* be reserved right now without actually
    /// reserving (used by algorithms that report their requirement upfront).
    pub fn would_fit(&self, bytes: usize) -> bool {
        self.in_use()
            .checked_add(bytes)
            .map(|total| total <= self.inner.budget)
            .unwrap_or(false)
    }

    fn release(&self, bytes: usize) {
        let prev = self.inner.in_use.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "released more than reserved");
    }
}

impl Default for MemoryBudget {
    /// Defaults to 4 GiB — the workspace-wide stand-in for the paper's
    /// 512 GB machine, scaled alongside the default workload sizes.
    fn default() -> Self {
        MemoryBudget::new(4 << 30)
    }
}

/// RAII guard for a byte reservation; releases on drop.
#[derive(Debug)]
pub struct Reservation {
    budget: MemoryBudget,
    bytes: usize,
}

impl Reservation {
    /// Size of this reservation in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Grows this reservation by `extra` bytes (e.g. a resizing buffer).
    ///
    /// # Errors
    /// [`OutOfMemory`] if the growth does not fit; the original reservation
    /// is untouched in that case.
    pub fn grow(&mut self, extra: usize) -> Result<(), OutOfMemory> {
        let g = self.budget.reserve(extra)?;
        // Absorb the new guard into self.
        self.bytes += g.bytes;
        std::mem::forget(g);
        Ok(())
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.budget.release(self.bytes);
    }
}

/// RAII guard for bytes recorded as spilled to disk; releases on drop.
///
/// Created by [`MemoryBudget::record_spill`]. Unlike [`Reservation`], the
/// tracked bytes never count against the RAM budget.
#[derive(Debug)]
pub struct SpillReservation {
    budget: MemoryBudget,
    bytes: usize,
}

impl SpillReservation {
    /// Size of this spill record in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Grows this spill record by `extra` bytes (e.g. an appended region).
    pub fn grow(&mut self, extra: usize) {
        let g = self.budget.record_spill(extra);
        self.bytes += g.bytes;
        std::mem::forget(g);
    }
}

impl Drop for SpillReservation {
    fn drop(&mut self) {
        let prev = self
            .budget
            .inner
            .spill_in_use
            .fetch_sub(self.bytes, Ordering::Relaxed);
        debug_assert!(prev >= self.bytes, "released more spill than recorded");
    }
}

/// Bytes needed for `n` `f64` values — shared helper for upfront estimates.
pub fn f64_bytes(n: usize) -> usize {
    n.saturating_mul(std::mem::size_of::<f64>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let b = MemoryBudget::new(100);
        let r = b.reserve(60).unwrap();
        assert_eq!(b.in_use(), 60);
        assert_eq!(b.peak(), 60);
        drop(r);
        assert_eq!(b.in_use(), 0);
        assert_eq!(b.peak(), 60);
    }

    #[test]
    fn over_budget_fails_with_details() {
        let b = MemoryBudget::new(100);
        let _r = b.reserve(80).unwrap();
        let err = b.reserve(30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.in_use, 80);
        assert_eq!(err.budget, 100);
        // Failing reservation must not change accounting.
        assert_eq!(b.in_use(), 80);
    }

    #[test]
    fn peak_tracks_high_water() {
        let b = MemoryBudget::new(1000);
        {
            let _a = b.reserve(400).unwrap();
            let _c = b.reserve(500).unwrap();
        }
        let _d = b.reserve(100).unwrap();
        assert_eq!(b.peak(), 900);
        b.reset_peak();
        assert_eq!(b.peak(), 100);
    }

    #[test]
    fn clones_share_accounting() {
        let b = MemoryBudget::new(100);
        let b2 = b.clone();
        let _r = b.reserve(70).unwrap();
        assert_eq!(b2.in_use(), 70);
        assert!(b2.reserve(40).is_err());
    }

    #[test]
    fn reserve_f64_uses_eight_bytes() {
        let b = MemoryBudget::new(80);
        assert!(b.reserve_f64(10).is_ok());
        assert!(b.reserve_f64(11).is_err());
    }

    #[test]
    fn grow_extends_or_fails_atomically() {
        let b = MemoryBudget::new(100);
        let mut r = b.reserve(50).unwrap();
        r.grow(30).unwrap();
        assert_eq!(b.in_use(), 80);
        assert!(r.grow(30).is_err());
        assert_eq!(b.in_use(), 80);
        drop(r);
        assert_eq!(b.in_use(), 0);
    }

    #[test]
    fn would_fit_is_side_effect_free() {
        let b = MemoryBudget::new(100);
        assert!(b.would_fit(100));
        assert!(!b.would_fit(101));
        assert_eq!(b.in_use(), 0);
    }

    #[test]
    fn unlimited_accepts_large_requests() {
        let b = MemoryBudget::unlimited();
        assert!(b.reserve(usize::MAX / 2).is_ok());
    }

    #[test]
    fn concurrent_reservations_are_consistent() {
        let b = MemoryBudget::new(8_000_000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        let r = b.reserve(1000).unwrap();
                        drop(r);
                    }
                });
            }
        });
        assert_eq!(b.in_use(), 0);
        assert!(b.peak() <= 8_000_000);
    }

    #[test]
    fn overflow_requests_rejected() {
        let b = MemoryBudget::new(usize::MAX);
        let _r = b.reserve(usize::MAX - 10).unwrap();
        assert!(b.reserve(usize::MAX).is_err());
    }

    #[test]
    fn default_policy_is_spill_and_strict_is_explicit() {
        assert_eq!(MemoryBudget::new(10).policy(), BudgetPolicy::Spill);
        let strict = MemoryBudget::with_policy(10, BudgetPolicy::Strict);
        assert_eq!(strict.policy(), BudgetPolicy::Strict);
        // Policy never changes the reserve primitive itself.
        assert!(strict.reserve(11).is_err());
        assert!(MemoryBudget::new(10).reserve(11).is_err());
    }

    #[test]
    fn reserve_unchecked_tracks_but_never_fails() {
        let b = MemoryBudget::new(100);
        let r = b.reserve_unchecked(250);
        assert_eq!(b.in_use(), 250);
        assert_eq!(b.peak(), 250);
        assert_eq!(b.available(), 0);
        drop(r);
        assert_eq!(b.in_use(), 0);
        assert_eq!(b.peak(), 250, "over-budget floor stays in the peak");
    }

    #[test]
    fn spill_accounting_is_separate_from_ram() {
        let b = MemoryBudget::new(100);
        let mut s = b.record_spill(1_000_000);
        assert_eq!(b.in_use(), 0, "spilled bytes never hit the RAM meter");
        assert_eq!(b.spilled_in_use(), 1_000_000);
        s.grow(500_000);
        assert_eq!(s.bytes(), 1_500_000);
        assert_eq!(b.peak_spilled(), 1_500_000);
        drop(s);
        assert_eq!(b.spilled_in_use(), 0);
        assert_eq!(b.peak_spilled(), 1_500_000);
        b.reset_peak();
        assert_eq!(b.peak_spilled(), 0);
    }

    #[test]
    fn io_counters_accumulate_from_tracked_scratch_files() {
        let b = MemoryBudget::new(1 << 20);
        assert_eq!(b.io_read_bytes(), 0);
        assert_eq!(b.io_write_bytes(), 0);
        let f = ScratchFile::create_tracked(&b).unwrap();
        let off = f.append_f64s(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(b.io_write_bytes(), 24);
        let mut back = [0.0; 3];
        f.read_f64s(off, &mut back).unwrap();
        assert_eq!(b.io_read_bytes(), 24);
        // Raw byte sections count too, and an untracked file counts nothing.
        f.write_bytes(0, &[0u8; 8]).unwrap();
        assert_eq!(b.io_write_bytes(), 32);
        let quiet = ScratchFile::create().unwrap();
        quiet.append_u32s(&[1, 2]).unwrap();
        assert_eq!(b.io_write_bytes(), 32);
    }

    #[test]
    fn available_reflects_reservations() {
        let b = MemoryBudget::new(100);
        assert_eq!(b.available(), 100);
        let _r = b.reserve(70).unwrap();
        assert_eq!(b.available(), 30);
    }
}
