//! Intermediate-data memory metering.
//!
//! Definition 7 of the P-Tucker paper singles out *intermediate data* — the
//! memory required to update factor matrices, excluding the tensor, the core
//! and the factor matrices themselves — as the quantity that decides whether
//! a Tucker algorithm scales. Figures 6, 7 and 11 report **O.O.M.** whenever
//! a competitor's intermediate data exceed the machine's 512 GB.
//!
//! Rather than physically exhausting RAM to reproduce those boundaries, every
//! algorithm in this workspace *meters* its intermediate allocations against
//! a [`MemoryBudget`]. The arithmetic is the same as a real machine's
//! (`bytes needed > bytes available ⇒ failure`); only the failure mode is
//! polite. A budget also tracks the high-water mark, which is what Fig. 8(b)
//! and Fig. 10(b) plot.
//!
//! ```
//! use ptucker_memtrack::MemoryBudget;
//!
//! let budget = MemoryBudget::new(1 << 20); // 1 MiB
//! let g = budget.reserve_f64(1000).unwrap(); // 8 kB of intermediates
//! assert_eq!(budget.in_use(), 8000);
//! drop(g);
//! assert_eq!(budget.in_use(), 0);
//! assert_eq!(budget.peak(), 8000);
//! assert!(budget.reserve_f64(1 << 20).is_err()); // 8 MiB > 1 MiB budget
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Error returned when a reservation would exceed the budget.
///
/// Mirrors the "O.O.M." entries in the paper's figures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested by the failing reservation.
    pub requested: usize,
    /// Bytes already reserved at the time of the request.
    pub in_use: usize,
    /// The configured budget in bytes.
    pub budget: usize,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory: requested {} B with {} B in use against a {} B budget",
            self.requested, self.in_use, self.budget
        )
    }
}

impl std::error::Error for OutOfMemory {}

#[derive(Debug)]
struct Inner {
    budget: usize,
    in_use: AtomicUsize,
    peak: AtomicUsize,
}

/// A shareable intermediate-data budget with peak tracking.
///
/// Cloning is cheap (`Arc` internally); clones share the same accounting, so
/// worker threads can reserve against the common budget.
#[derive(Debug, Clone)]
pub struct MemoryBudget {
    inner: Arc<Inner>,
}

impl MemoryBudget {
    /// Creates a budget of `bytes` bytes.
    pub fn new(bytes: usize) -> Self {
        MemoryBudget {
            inner: Arc::new(Inner {
                budget: bytes,
                in_use: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
            }),
        }
    }

    /// An effectively unlimited budget (for tests and small runs).
    pub fn unlimited() -> Self {
        MemoryBudget::new(usize::MAX)
    }

    /// The configured limit in bytes.
    pub fn budget(&self) -> usize {
        self.inner.budget
    }

    /// Bytes currently reserved.
    pub fn in_use(&self) -> usize {
        self.inner.in_use.load(Ordering::Relaxed)
    }

    /// High-water mark of reserved bytes since creation (or the last
    /// [`MemoryBudget::reset_peak`]).
    pub fn peak(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Resets the peak tracker to the current usage (not to zero, so live
    /// reservations stay visible).
    pub fn reset_peak(&self) {
        self.inner.peak.store(self.in_use(), Ordering::Relaxed);
    }

    /// Reserves `bytes` bytes, failing if the budget would be exceeded.
    ///
    /// The reservation is released when the returned guard is dropped.
    ///
    /// # Errors
    /// [`OutOfMemory`] if `in_use + bytes > budget`.
    pub fn reserve(&self, bytes: usize) -> Result<Reservation, OutOfMemory> {
        let mut cur = self.inner.in_use.load(Ordering::Relaxed);
        loop {
            let new = cur.checked_add(bytes).ok_or(OutOfMemory {
                requested: bytes,
                in_use: cur,
                budget: self.inner.budget,
            })?;
            if new > self.inner.budget {
                return Err(OutOfMemory {
                    requested: bytes,
                    in_use: cur,
                    budget: self.inner.budget,
                });
            }
            match self.inner.in_use.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.peak.fetch_max(new, Ordering::Relaxed);
                    return Ok(Reservation {
                        budget: self.clone(),
                        bytes,
                    });
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Convenience: reserves space for `n` `f64` values.
    ///
    /// # Errors
    /// [`OutOfMemory`] if the implied byte count exceeds the budget.
    pub fn reserve_f64(&self, n: usize) -> Result<Reservation, OutOfMemory> {
        self.reserve(n.saturating_mul(std::mem::size_of::<f64>()))
    }

    /// Checks whether `bytes` *could* be reserved right now without actually
    /// reserving (used by algorithms that report their requirement upfront).
    pub fn would_fit(&self, bytes: usize) -> bool {
        self.in_use()
            .checked_add(bytes)
            .map(|total| total <= self.inner.budget)
            .unwrap_or(false)
    }

    fn release(&self, bytes: usize) {
        let prev = self.inner.in_use.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "released more than reserved");
    }
}

impl Default for MemoryBudget {
    /// Defaults to 4 GiB — the workspace-wide stand-in for the paper's
    /// 512 GB machine, scaled alongside the default workload sizes.
    fn default() -> Self {
        MemoryBudget::new(4 << 30)
    }
}

/// RAII guard for a byte reservation; releases on drop.
#[derive(Debug)]
pub struct Reservation {
    budget: MemoryBudget,
    bytes: usize,
}

impl Reservation {
    /// Size of this reservation in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Grows this reservation by `extra` bytes (e.g. a resizing buffer).
    ///
    /// # Errors
    /// [`OutOfMemory`] if the growth does not fit; the original reservation
    /// is untouched in that case.
    pub fn grow(&mut self, extra: usize) -> Result<(), OutOfMemory> {
        let g = self.budget.reserve(extra)?;
        // Absorb the new guard into self.
        self.bytes += g.bytes;
        std::mem::forget(g);
        Ok(())
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.budget.release(self.bytes);
    }
}

/// Bytes needed for `n` `f64` values — shared helper for upfront estimates.
pub fn f64_bytes(n: usize) -> usize {
    n.saturating_mul(std::mem::size_of::<f64>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let b = MemoryBudget::new(100);
        let r = b.reserve(60).unwrap();
        assert_eq!(b.in_use(), 60);
        assert_eq!(b.peak(), 60);
        drop(r);
        assert_eq!(b.in_use(), 0);
        assert_eq!(b.peak(), 60);
    }

    #[test]
    fn over_budget_fails_with_details() {
        let b = MemoryBudget::new(100);
        let _r = b.reserve(80).unwrap();
        let err = b.reserve(30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.in_use, 80);
        assert_eq!(err.budget, 100);
        // Failing reservation must not change accounting.
        assert_eq!(b.in_use(), 80);
    }

    #[test]
    fn peak_tracks_high_water() {
        let b = MemoryBudget::new(1000);
        {
            let _a = b.reserve(400).unwrap();
            let _c = b.reserve(500).unwrap();
        }
        let _d = b.reserve(100).unwrap();
        assert_eq!(b.peak(), 900);
        b.reset_peak();
        assert_eq!(b.peak(), 100);
    }

    #[test]
    fn clones_share_accounting() {
        let b = MemoryBudget::new(100);
        let b2 = b.clone();
        let _r = b.reserve(70).unwrap();
        assert_eq!(b2.in_use(), 70);
        assert!(b2.reserve(40).is_err());
    }

    #[test]
    fn reserve_f64_uses_eight_bytes() {
        let b = MemoryBudget::new(80);
        assert!(b.reserve_f64(10).is_ok());
        assert!(b.reserve_f64(11).is_err());
    }

    #[test]
    fn grow_extends_or_fails_atomically() {
        let b = MemoryBudget::new(100);
        let mut r = b.reserve(50).unwrap();
        r.grow(30).unwrap();
        assert_eq!(b.in_use(), 80);
        assert!(r.grow(30).is_err());
        assert_eq!(b.in_use(), 80);
        drop(r);
        assert_eq!(b.in_use(), 0);
    }

    #[test]
    fn would_fit_is_side_effect_free() {
        let b = MemoryBudget::new(100);
        assert!(b.would_fit(100));
        assert!(!b.would_fit(101));
        assert_eq!(b.in_use(), 0);
    }

    #[test]
    fn unlimited_accepts_large_requests() {
        let b = MemoryBudget::unlimited();
        assert!(b.reserve(usize::MAX / 2).is_ok());
    }

    #[test]
    fn concurrent_reservations_are_consistent() {
        let b = MemoryBudget::new(8_000_000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        let r = b.reserve(1000).unwrap();
                        drop(r);
                    }
                });
            }
        });
        assert_eq!(b.in_use(), 0);
        assert!(b.peak() <= 8_000_000);
    }

    #[test]
    fn overflow_requests_rejected() {
        let b = MemoryBudget::new(usize::MAX);
        let _r = b.reserve(usize::MAX - 10).unwrap();
        assert!(b.reserve(usize::MAX).is_err());
    }
}
