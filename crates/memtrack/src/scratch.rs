//! Anonymous scratch files for spilled intermediate data.
//!
//! A [`ScratchFile`] is the disk half of a file-backed reservation: when a
//! data plane exceeds the [`crate::MemoryBudget`] under
//! [`crate::BudgetPolicy::Spill`], its bulk arrays move here and only
//! windows of them stay resident. The file is created in the system temp
//! directory and unlinked immediately (where the platform allows), so it
//! never outlives the process even on a crash; the remaining handle is the
//! only way to reach the bytes.
//!
//! All offsets are in bytes from the start of the file. Typed helpers
//! convert `f64`/`u32` slices through a fixed stack buffer, so reading a
//! window allocates nothing beyond the caller's destination slice.
//!
//! ```
//! use ptucker_memtrack::ScratchFile;
//!
//! let f = ScratchFile::create().unwrap();
//! let off = f.append_f64s(&[1.0, 2.0, 3.0]).unwrap();
//! let mut back = [0.0; 2];
//! f.read_f64s(off + 8, &mut back).unwrap(); // skip the first value
//! assert_eq!(back, [2.0, 3.0]);
//! assert_eq!(f.len(), 24);
//! ```

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Stack buffer for typed conversion: 1024 `f64`s / 2048 `u32`s per syscall.
const CHUNK_BYTES: usize = 8192;

/// A spilled window asked for bytes its reservation does not hold: the
/// offset/length pair disagrees with the file's reserved extent, meaning
/// the scratch file was truncated or the caller's bookkeeping is corrupt.
/// Surfaced as the payload of an [`io::ErrorKind::InvalidData`] error so
/// existing `io::Result` plumbing carries it, but typed so harnesses can
/// downcast and name the corruption instead of reading silent garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScratchCorruption {
    /// Byte offset the read started at.
    pub offset: u64,
    /// Bytes the window asked for.
    pub requested: u64,
    /// Bytes actually reserved in the file.
    pub reserved: u64,
}

impl fmt::Display for ScratchCorruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "spilled window at offset {} wants {} bytes but only {} are reserved \
             — scratch file corrupt or truncated",
            self.offset, self.requested, self.reserved
        )
    }
}

impl std::error::Error for ScratchCorruption {}

/// Reads exactly `buf.len()` bytes, retrying interrupted (`EINTR`) and
/// short reads explicitly — the scratch path must never propagate a
/// partial window as if it were full.
///
/// # Errors
/// [`io::ErrorKind::UnexpectedEof`] on end-of-stream, or any non-`EINTR`
/// I/O error from the reader.
pub(crate) fn read_full(r: &mut impl Read, mut buf: &mut [u8]) -> io::Result<()> {
    while !buf.is_empty() {
        match r.read(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "scratch read hit end of file before filling the window",
                ))
            }
            Ok(n) => buf = &mut buf[n..],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Writes all of `buf`, retrying interrupted (`EINTR`) and short writes.
///
/// # Errors
/// [`io::ErrorKind::WriteZero`] if the writer stops accepting bytes, or
/// any non-`EINTR` I/O error from the writer.
pub(crate) fn write_full(w: &mut impl Write, mut buf: &[u8]) -> io::Result<()> {
    while !buf.is_empty() {
        match w.write(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "scratch write accepted zero bytes",
                ))
            }
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Validates a `(offset, len)` window against the file's reserved extent,
/// producing the typed [`ScratchCorruption`] error on overrun.
fn check_window(offset: u64, len: u64, reserved: u64) -> io::Result<()> {
    if offset.checked_add(len).is_none_or(|end| end > reserved) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            ScratchCorruption {
                offset,
                requested: len,
                reserved,
            },
        ));
    }
    Ok(())
}

/// Process-unique counter so concurrent scratch files never collide.
static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

#[derive(Debug)]
struct Inner {
    file: File,
    /// Current logical length in bytes (appends go here).
    len: u64,
}

/// An unlinked temporary file for spilled tensor data.
///
/// Interior-mutable and `Sync`: reads and writes lock the underlying file
/// (seek + I/O must be atomic per operation), so it can be shared across
/// the worker threads of a fit. The windowed execution path only touches
/// it between parallel sections, so the lock is uncontended in practice.
#[derive(Debug)]
pub struct ScratchFile {
    inner: Mutex<Inner>,
    /// Set only when the eager unlink failed (non-Unix platforms): the
    /// path to remove on drop.
    cleanup: Option<PathBuf>,
    /// Budget whose I/O counters this file reports its traffic to (see
    /// [`ScratchFile::create_tracked`]); `None` leaves the file silent.
    tracker: Option<crate::MemoryBudget>,
}

impl ScratchFile {
    /// Creates an empty scratch file in [`std::env::temp_dir`].
    ///
    /// # Errors
    /// Any I/O error from creating or opening the file.
    pub fn create() -> io::Result<Self> {
        Self::create_inner(None)
    }

    /// Like [`ScratchFile::create`], but every byte read from or written to
    /// the file is added to `budget`'s I/O counters
    /// ([`crate::MemoryBudget::io_read_bytes`] /
    /// [`crate::MemoryBudget::io_write_bytes`]) — how disk-bound fits
    /// surface their traffic the way sharded fits surface wire bytes.
    ///
    /// # Errors
    /// Any I/O error from creating or opening the file.
    pub fn create_tracked(budget: &crate::MemoryBudget) -> io::Result<Self> {
        Self::create_inner(Some(budget.clone()))
    }

    fn create_inner(tracker: Option<crate::MemoryBudget>) -> io::Result<Self> {
        let seq = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("ptucker-spill-{}-{seq}.bin", std::process::id()));
        let file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(&path)?;
        // Unlink eagerly: on Unix the open handle keeps the data alive and
        // the name disappears at once, so a crashed process leaks nothing.
        let cleanup = match std::fs::remove_file(&path) {
            Ok(()) => None,
            Err(_) => Some(path),
        };
        Ok(ScratchFile {
            inner: Mutex::new(Inner { file, len: 0 }),
            cleanup,
            tracker,
        })
    }

    #[inline]
    fn count_read(&self, bytes: usize) {
        if let Some(b) = &self.tracker {
            b.add_io_read(bytes as u64);
        }
    }

    #[inline]
    fn count_write(&self, bytes: usize) {
        if let Some(b) = &self.tracker {
            b.add_io_write(bytes as u64);
        }
    }

    /// Current logical length in bytes.
    pub fn len(&self) -> u64 {
        self.inner.lock().expect("scratch lock").len
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extends the file by `bytes` zero bytes and returns the starting
    /// offset of the new region — used to lay out a table whose rows are
    /// then scatter-written with [`ScratchFile::write_f64s`].
    ///
    /// # Errors
    /// Any I/O error from resizing the file.
    pub fn reserve_region(&self, bytes: u64) -> io::Result<u64> {
        let mut inner = self.inner.lock().expect("scratch lock");
        let start = inner.len;
        let new_len = start + bytes;
        inner.file.set_len(new_len)?;
        inner.len = new_len;
        Ok(start)
    }

    fn write_chunked(
        &self,
        offset: Option<u64>,
        total_bytes: usize,
        mut fill: impl FnMut(&mut [u8; CHUNK_BYTES], usize) -> usize,
    ) -> io::Result<u64> {
        let mut inner = self.inner.lock().expect("scratch lock");
        let start = offset.unwrap_or(inner.len);
        inner.file.seek(SeekFrom::Start(start))?;
        let mut buf = [0u8; CHUNK_BYTES];
        let mut done = 0;
        while done < total_bytes {
            let n = fill(&mut buf, done);
            write_full(&mut inner.file, &buf[..n])?;
            done += n;
        }
        inner.len = inner.len.max(start + total_bytes as u64);
        drop(inner);
        self.count_write(total_bytes);
        Ok(start)
    }

    fn read_chunked(
        &self,
        offset: u64,
        total_bytes: usize,
        mut drain: impl FnMut(&[u8], usize),
    ) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("scratch lock");
        check_window(offset, total_bytes as u64, inner.len)?;
        inner.file.seek(SeekFrom::Start(offset))?;
        let mut buf = [0u8; CHUNK_BYTES];
        let mut done = 0;
        while done < total_bytes {
            let n = (total_bytes - done).min(CHUNK_BYTES);
            read_full(&mut inner.file, &mut buf[..n])?;
            drain(&buf[..n], done);
            done += n;
        }
        drop(inner);
        self.count_read(total_bytes);
        Ok(())
    }

    /// Writes raw bytes at byte `offset` — for interleaved record
    /// sections whose typed layout the caller owns. One lock + seek +
    /// write per call, no conversion buffer.
    ///
    /// # Errors
    /// Any I/O error from the write.
    pub fn write_bytes(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("scratch lock");
        inner.file.seek(SeekFrom::Start(offset))?;
        write_full(&mut inner.file, data)?;
        inner.len = inner.len.max(offset + data.len() as u64);
        drop(inner);
        self.count_write(data.len());
        Ok(())
    }

    /// Fills `out` with raw bytes from byte `offset` — the read half of
    /// [`ScratchFile::write_bytes`]: one lock + seek + read straight into
    /// the caller's buffer, which is what makes an interleaved window
    /// refill a single syscall instead of one per section.
    ///
    /// # Errors
    /// A typed [`ScratchCorruption`] (as [`io::ErrorKind::InvalidData`])
    /// when the window overruns the file's reserved extent, or any I/O
    /// error from the read itself.
    pub fn read_bytes(&self, offset: u64, out: &mut [u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("scratch lock");
        check_window(offset, out.len() as u64, inner.len)?;
        inner.file.seek(SeekFrom::Start(offset))?;
        read_full(&mut inner.file, out)?;
        drop(inner);
        self.count_read(out.len());
        Ok(())
    }

    /// Appends `data` and returns the byte offset it starts at.
    ///
    /// # Errors
    /// Any I/O error from the write.
    pub fn append_f64s(&self, data: &[f64]) -> io::Result<u64> {
        self.write_f64s_impl(None, data)
    }

    /// Writes `data` at byte `offset` (little-endian `f64`s).
    ///
    /// # Errors
    /// Any I/O error from the write.
    pub fn write_f64s(&self, offset: u64, data: &[f64]) -> io::Result<()> {
        self.write_f64s_impl(Some(offset), data).map(|_| ())
    }

    fn write_f64s_impl(&self, offset: Option<u64>, data: &[f64]) -> io::Result<u64> {
        self.write_chunked(offset, data.len() * 8, |buf, done_bytes| {
            let start = done_bytes / 8;
            let count = (data.len() - start).min(CHUNK_BYTES / 8);
            for (slot, v) in buf.chunks_exact_mut(8).zip(&data[start..start + count]) {
                slot.copy_from_slice(&v.to_le_bytes());
            }
            count * 8
        })
    }

    /// Appends `data` and returns the byte offset it starts at
    /// (little-endian `f32`s — the storage half of the engine's
    /// mixed-precision mode).
    ///
    /// # Errors
    /// Any I/O error from the write.
    pub fn append_f32s(&self, data: &[f32]) -> io::Result<u64> {
        self.write_f32s_impl(None, data)
    }

    /// Writes `data` at byte `offset` (little-endian `f32`s).
    ///
    /// # Errors
    /// Any I/O error from the write.
    pub fn write_f32s(&self, offset: u64, data: &[f32]) -> io::Result<()> {
        self.write_f32s_impl(Some(offset), data).map(|_| ())
    }

    fn write_f32s_impl(&self, offset: Option<u64>, data: &[f32]) -> io::Result<u64> {
        self.write_chunked(offset, data.len() * 4, |buf, done_bytes| {
            let start = done_bytes / 4;
            let count = (data.len() - start).min(CHUNK_BYTES / 4);
            for (slot, v) in buf.chunks_exact_mut(4).zip(&data[start..start + count]) {
                slot.copy_from_slice(&v.to_le_bytes());
            }
            count * 4
        })
    }

    /// Appends `data` and returns the byte offset it starts at.
    ///
    /// # Errors
    /// Any I/O error from the write.
    pub fn append_u32s(&self, data: &[u32]) -> io::Result<u64> {
        self.write_u32s_impl(None, data)
    }

    /// Writes `data` at byte `offset` (little-endian `u32`s).
    ///
    /// # Errors
    /// Any I/O error from the write.
    pub fn write_u32s(&self, offset: u64, data: &[u32]) -> io::Result<()> {
        self.write_u32s_impl(Some(offset), data).map(|_| ())
    }

    fn write_u32s_impl(&self, offset: Option<u64>, data: &[u32]) -> io::Result<u64> {
        self.write_chunked(offset, data.len() * 4, |buf, done_bytes| {
            let start = done_bytes / 4;
            let count = (data.len() - start).min(CHUNK_BYTES / 4);
            for (slot, v) in buf.chunks_exact_mut(4).zip(&data[start..start + count]) {
                slot.copy_from_slice(&v.to_le_bytes());
            }
            count * 4
        })
    }

    /// Fills `out` from byte `offset` (little-endian `f64`s).
    ///
    /// # Errors
    /// Any I/O error, including reading past the end of the file.
    pub fn read_f64s(&self, offset: u64, out: &mut [f64]) -> io::Result<()> {
        self.read_chunked(offset, out.len() * 8, |bytes, done_bytes| {
            let start = done_bytes / 8;
            for (slot, chunk) in out[start..].iter_mut().zip(bytes.chunks_exact(8)) {
                *slot = f64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
        })
    }

    /// Fills `out` from byte `offset` (little-endian `f32`s). The
    /// round-trip through disk is bit-preserving, so f32-storage spills
    /// reload the exact values that were written.
    ///
    /// # Errors
    /// Any I/O error, including reading past the end of the file.
    pub fn read_f32s(&self, offset: u64, out: &mut [f32]) -> io::Result<()> {
        self.read_chunked(offset, out.len() * 4, |bytes, done_bytes| {
            let start = done_bytes / 4;
            for (slot, chunk) in out[start..].iter_mut().zip(bytes.chunks_exact(4)) {
                *slot = f32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            }
        })
    }

    /// Fills `out` from byte `offset` (little-endian `u32`s).
    ///
    /// # Errors
    /// Any I/O error, including reading past the end of the file.
    pub fn read_u32s(&self, offset: u64, out: &mut [u32]) -> io::Result<()> {
        self.read_chunked(offset, out.len() * 4, |bytes, done_bytes| {
            let start = done_bytes / 4;
            for (slot, chunk) in out[start..].iter_mut().zip(bytes.chunks_exact(4)) {
                *slot = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            }
        })
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        if let Some(path) = self.cleanup.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64_and_u32_sections() {
        let f = ScratchFile::create().unwrap();
        let vals: Vec<f64> = (0..1500).map(|i| i as f64 * 0.5 - 3.0).collect();
        let ids: Vec<u32> = (0..3000).map(|i| i * 7 + 1).collect();
        let off_v = f.append_f64s(&vals).unwrap();
        let off_i = f.append_u32s(&ids).unwrap();
        assert_eq!(off_v, 0);
        assert_eq!(off_i, 1500 * 8);
        assert_eq!(f.len(), 1500 * 8 + 3000 * 4);

        let mut vback = vec![0.0; 1500];
        f.read_f64s(off_v, &mut vback).unwrap();
        assert_eq!(vback, vals);
        // Windowed read: positions 100..228.
        let mut iback = vec![0u32; 128];
        f.read_u32s(off_i + 100 * 4, &mut iback).unwrap();
        assert_eq!(iback, &ids[100..228]);
    }

    #[test]
    fn scatter_writes_into_reserved_region() {
        let f = ScratchFile::create().unwrap();
        let region = f.reserve_region(4 * 8).unwrap();
        // Write rows out of order, as the spilled Pres permutation does.
        f.write_f64s(region + 3 * 8, &[33.0]).unwrap();
        f.write_f64s(region, &[11.0]).unwrap();
        f.write_f64s(region + 8, &[22.0, 23.0]).unwrap();
        let mut back = [0.0; 4];
        f.read_f64s(region, &mut back).unwrap();
        assert_eq!(back, [11.0, 22.0, 23.0, 33.0]);
    }

    #[test]
    fn raw_byte_sections_roundtrip() {
        let f = ScratchFile::create().unwrap();
        let region = f.reserve_region(64).unwrap();
        let rec: Vec<u8> = (0..40u8).collect();
        f.write_bytes(region + 8, &rec).unwrap();
        let mut back = vec![0u8; 40];
        f.read_bytes(region + 8, &mut back).unwrap();
        assert_eq!(back, rec);
        assert!(f.len() >= 48);
        // Reading past the end errors like the typed readers.
        let mut over = vec![0u8; 128];
        assert!(f.read_bytes(region, &mut over).is_err());
    }

    #[test]
    fn roundtrip_f32_sections_bit_preserving() {
        let f = ScratchFile::create().unwrap();
        // Cross the chunk boundary and include awkward bit patterns.
        let n = CHUNK_BYTES / 4 + 33;
        let mut vals: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).sin()).collect();
        vals[0] = -0.0;
        vals[1] = f32::MIN_POSITIVE / 2.0; // subnormal
        let off = f.append_f32s(&vals).unwrap();
        assert_eq!(f.len(), n as u64 * 4);
        let mut back = vec![0.0f32; n];
        f.read_f32s(off, &mut back).unwrap();
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Scatter write into a reserved region, windowed read back.
        let region = f.reserve_region(6 * 4).unwrap();
        f.write_f32s(region + 2 * 4, &[5.5, 6.5]).unwrap();
        let mut w = [0.0f32; 2];
        f.read_f32s(region + 2 * 4, &mut w).unwrap();
        assert_eq!(w, [5.5, 6.5]);
    }

    #[test]
    fn read_past_end_errors() {
        let f = ScratchFile::create().unwrap();
        f.append_f64s(&[1.0]).unwrap();
        let mut out = [0.0; 2];
        assert!(f.read_f64s(0, &mut out).is_err());
    }

    #[test]
    fn window_overrun_is_typed_corruption() {
        // Satellite: a spilled window whose byte count disagrees with its
        // reservation must surface as a named corruption error, not
        // silent garbage or a bare EOF.
        let f = ScratchFile::create().unwrap();
        let region = f.reserve_region(32).unwrap();
        let mut out = vec![0u8; 40];
        let err = f.read_bytes(region, &mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let inner = err
            .get_ref()
            .and_then(|e| e.downcast_ref::<ScratchCorruption>())
            .expect("typed ScratchCorruption payload");
        assert_eq!(
            *inner,
            ScratchCorruption {
                offset: region,
                requested: 40,
                reserved: 32,
            }
        );
        assert!(format!("{inner}").contains("corrupt or truncated"));
        // The typed readers share the same guard.
        let mut f64s = vec![0.0f64; 5];
        let err = f.read_f64s(region, &mut f64s).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// A reader that serves one `EINTR` before every successful short
    /// read — the signal-heavy worst case `read_full` must absorb.
    struct InterruptingReader<'a> {
        data: &'a [u8],
        pos: usize,
        interrupt_next: bool,
    }

    impl Read for InterruptingReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                return Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"));
            }
            self.interrupt_next = true;
            let n = buf.len().min(3).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    /// A writer accepting at most 2 bytes per call, with an `EINTR`
    /// before each — exercises `write_full`'s short-write retry loop.
    struct InterruptingWriter {
        data: Vec<u8>,
        interrupt_next: bool,
    }

    impl Write for InterruptingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                return Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"));
            }
            self.interrupt_next = true;
            let n = buf.len().min(2);
            self.data.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn read_full_retries_eintr_and_short_reads() {
        let data: Vec<u8> = (0..64u8).collect();
        let mut r = InterruptingReader {
            data: &data,
            pos: 0,
            interrupt_next: true,
        };
        let mut out = vec![0u8; 64];
        read_full(&mut r, &mut out).unwrap();
        assert_eq!(out, data);
        // Exhausted stream: UnexpectedEof, not a partial fill.
        let mut more = [0u8; 1];
        let err = read_full(&mut r, &mut more).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn write_full_retries_eintr_and_short_writes() {
        let mut w = InterruptingWriter {
            data: Vec::new(),
            interrupt_next: true,
        };
        let payload: Vec<u8> = (0..33u8).collect();
        write_full(&mut w, &payload).unwrap();
        assert_eq!(w.data, payload);
    }

    #[test]
    fn values_crossing_chunk_boundaries_survive() {
        // > CHUNK_BYTES of data forces multiple syscalls per call.
        let f = ScratchFile::create().unwrap();
        let n = CHUNK_BYTES / 8 * 3 + 17;
        let vals: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let off = f.append_f64s(&vals).unwrap();
        let mut back = vec![0.0; n];
        f.read_f64s(off, &mut back).unwrap();
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
