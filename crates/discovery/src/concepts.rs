use crate::kmeans::{kmeans, KMeansResult};
use ptucker_linalg::Matrix;

/// Discovered concepts over one mode of a fitted Tucker model.
#[derive(Debug, Clone)]
pub struct Concepts {
    /// The underlying clustering.
    pub clustering: KMeansResult,
    /// Members of each cluster (row ids of the factor matrix), ordered by
    /// distance to the centroid — the first few are the "most
    /// representative" objects, the analogue of the example movies the
    /// paper lists per concept in Table V.
    pub members: Vec<Vec<usize>>,
}

/// Runs concept discovery on a factor matrix: K-means over its rows
/// (the object latent vectors), with members ranked by centroid proximity.
///
/// The paper's Table V uses `J = 8, K = 100` on the MovieLens movie factor;
/// any `k ≤ rows` works here.
///
/// # Panics
/// Panics if `k == 0` or `k > factor.rows()` (propagated from k-means).
pub fn discover_concepts(factor: &Matrix, k: usize, seed: u64) -> Concepts {
    let clustering = kmeans(factor, k, 100, seed);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (row, &c) in clustering.assignments.iter().enumerate() {
        members[c].push(row);
    }
    for (c, cluster) in members.iter_mut().enumerate() {
        let centroid = clustering.centroids.row(c);
        cluster.sort_by(|&a, &b| {
            let da: f64 = factor
                .row(a)
                .iter()
                .zip(centroid)
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            let db: f64 = factor
                .row(b)
                .iter()
                .zip(centroid)
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            da.partial_cmp(&db)
                .expect("finite distances")
                .then(a.cmp(&b))
        });
    }
    Concepts {
        clustering,
        members,
    }
}

impl Concepts {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.members.len()
    }

    /// The `top` most representative members of cluster `c`.
    pub fn representatives(&self, c: usize, top: usize) -> &[usize] {
        let m = &self.members[c];
        &m[..top.min(m.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn factor_with_groups() -> (Matrix, Vec<usize>) {
        // 30 rows in 3 latent groups along different axes.
        let mut rng = StdRng::seed_from_u64(3);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for g in 0..3usize {
            for _ in 0..10 {
                let mut row = [0.05, 0.05, 0.05];
                row[g] = 1.0 + 0.1 * rng.gen::<f64>();
                data.extend_from_slice(&row);
                labels.push(g);
            }
        }
        (Matrix::from_vec(30, 3, data).unwrap(), labels)
    }

    #[test]
    fn concepts_partition_all_rows() {
        let (f, _) = factor_with_groups();
        let c = discover_concepts(&f, 3, 1);
        let total: usize = c.members.iter().map(|m| m.len()).sum();
        assert_eq!(total, 30);
        assert_eq!(c.num_clusters(), 3);
    }

    #[test]
    fn clusters_match_planted_groups() {
        let (f, labels) = factor_with_groups();
        let c = discover_concepts(&f, 3, 5);
        let purity = crate::cluster_purity(&c.clustering.assignments, &labels);
        assert_eq!(purity, 1.0);
    }

    #[test]
    fn representatives_are_sorted_by_distance() {
        let (f, _) = factor_with_groups();
        let c = discover_concepts(&f, 3, 2);
        for cl in 0..3 {
            let centroid = c.clustering.centroids.row(cl).to_vec();
            let mem = &c.members[cl];
            let dist = |r: usize| -> f64 {
                f.row(r)
                    .iter()
                    .zip(&centroid)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum()
            };
            for w in mem.windows(2) {
                assert!(dist(w[0]) <= dist(w[1]) + 1e-12);
            }
        }
    }

    #[test]
    fn representatives_respects_top_cap() {
        let (f, _) = factor_with_groups();
        let c = discover_concepts(&f, 3, 2);
        assert!(c.representatives(0, 3).len() <= 3);
        assert_eq!(c.representatives(1, 1000).len(), c.members[1].len());
    }
}
