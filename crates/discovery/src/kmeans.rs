use ptucker_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Output of [`kmeans`]: centroids, per-row assignments and the final
/// within-cluster sum of squared distances.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// `k × d` centroid matrix.
    pub centroids: Matrix,
    /// Cluster id of every input row.
    pub assignments: Vec<usize>,
    /// Σ over rows of squared distance to the assigned centroid.
    pub inertia: f64,
    /// Lloyd iterations executed before convergence (or the cap).
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Lloyd's K-means with k-means++ seeding over the rows of `data`.
///
/// Deterministic for a fixed `seed`. Empty clusters are re-seeded with the
/// point farthest from its centroid, so exactly `k` clusters survive.
///
/// # Panics
/// Panics if `k == 0` or `k > data.rows()`.
pub fn kmeans(data: &Matrix, k: usize, max_iters: usize, seed: u64) -> KMeansResult {
    let n = data.rows();
    let d = data.cols();
    assert!(k > 0 && k <= n, "need 1 <= k <= number of rows");
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centroids = Matrix::zeros(k, d);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));
    let mut dist2: Vec<f64> = (0..n)
        .map(|i| sq_dist(data.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = dist2.iter().sum();
        let choice = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &w) in dist2.iter().enumerate() {
                if target < w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            pick
        };
        centroids.row_mut(c).copy_from_slice(data.row(choice));
        for (i, slot) in dist2.iter_mut().enumerate() {
            *slot = slot.min(sq_dist(data.row(i), centroids.row(c)));
        }
    }

    // Lloyd iterations.
    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    for it in 0..max_iters.max(1) {
        iterations = it + 1;
        // Assign.
        let mut changed = false;
        for i in 0..n {
            let row = data.row(i);
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let dd = sq_dist(row, centroids.row(c));
                if dd < best_d {
                    best_d = dd;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assignments[i];
            counts[c] += 1;
            for (s, v) in sums.row_mut(c).iter_mut().zip(data.row(i)) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with the farthest point.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = sq_dist(data.row(a), centroids.row(assignments[a]));
                        let db = sq_dist(data.row(b), centroids.row(assignments[b]));
                        da.partial_cmp(&db).expect("finite distances")
                    })
                    .expect("non-empty data");
                centroids.row_mut(c).copy_from_slice(data.row(far));
                changed = true;
            } else {
                let inv = 1.0 / counts[c] as f64;
                for (ctr, s) in centroids.row_mut(c).iter_mut().zip(sums.row(c)) {
                    *ctr = s * inv;
                }
            }
        }
        if !changed && it > 0 {
            break;
        }
    }

    let inertia = (0..n)
        .map(|i| sq_dist(data.row(i), centroids.row(assignments[i])))
        .sum();
    KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

/// Cluster purity against ground-truth labels: the fraction of points whose
/// cluster's majority label matches their own. 1.0 = perfect recovery.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn cluster_purity(assignments: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(assignments.len(), labels.len());
    assert!(!assignments.is_empty());
    let k = assignments.iter().max().unwrap() + 1;
    let l = labels.iter().max().unwrap() + 1;
    let mut table = vec![0usize; k * l];
    for (&c, &g) in assignments.iter().zip(labels) {
        table[c * l + g] += 1;
    }
    let correct: usize = (0..k)
        .map(|c| (0..l).map(|g| table[c * l + g]).max().unwrap_or(0))
        .sum();
    correct as f64 / assignments.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs in 2D.
    fn blobs() -> (Matrix, Vec<usize>) {
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..20 {
                rows.push(cx + rng.gen::<f64>() * 0.5);
                rows.push(cy + rng.gen::<f64>() * 0.5);
                labels.push(ci);
            }
        }
        (Matrix::from_vec(60, 2, rows).unwrap(), labels)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (data, labels) = blobs();
        let r = kmeans(&data, 3, 50, 7);
        assert_eq!(cluster_purity(&r.assignments, &labels), 1.0);
        assert!(r.inertia < 60.0 * 0.5);
    }

    #[test]
    fn deterministic_for_seed() {
        let (data, _) = blobs();
        let a = kmeans(&data, 3, 50, 9);
        let b = kmeans(&data, 3, 50, 9);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = Matrix::from_rows(&[&[0.0, 0.0], &[5.0, 5.0], &[9.0, 1.0]]);
        let r = kmeans(&data, 3, 20, 3);
        assert!(r.inertia < 1e-18);
        // All three rows in distinct clusters.
        let mut seen: Vec<usize> = r.assignments.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let data = Matrix::from_rows(&[&[1.0, 3.0], &[3.0, 5.0]]);
        let r = kmeans(&data, 1, 10, 1);
        assert!((r.centroids[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((r.centroids[(0, 1)] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn identical_points_handled() {
        let data = Matrix::from_vec(5, 2, vec![1.0; 10]).unwrap();
        let r = kmeans(&data, 2, 10, 5);
        assert_eq!(r.assignments.len(), 5);
        assert!(r.inertia < 1e-18);
    }

    #[test]
    #[should_panic(expected = "1 <= k")]
    fn k_zero_panics() {
        let data = Matrix::zeros(3, 2);
        let _ = kmeans(&data, 0, 10, 1);
    }

    #[test]
    fn purity_detects_mismatch() {
        // Two clusters, half the labels shuffled: purity well below 1.
        let assignments = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let labels = vec![0, 0, 1, 1, 0, 0, 1, 1];
        assert!((cluster_purity(&assignments, &labels) - 0.5).abs() < 1e-12);
        let perfect = vec![1, 1, 0, 0];
        let gt = vec![0, 0, 1, 1];
        assert_eq!(cluster_purity(&perfect, &gt), 1.0);
    }
}
