use ptucker_tensor::CoreTensor;

/// One discovered cross-mode relation: a core entry binding column `jₙ` of
/// every factor matrix with the given strength.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// The core entry's multi-index `(j₁, …, j_N)`.
    pub index: Vec<usize>,
    /// The core value `G_{(j₁,…,j_N)}` (signed; ranking is by magnitude).
    pub strength: f64,
}

/// Finds the `top_k` strongest relations in a core tensor — the paper's
/// Table VI procedure: "examining large values in G gives us clues to find
/// strong relations in a given tensor".
///
/// Entries are ranked by `|G_β|` descending (ties broken by index order for
/// determinism). Returns fewer than `top_k` if the core is smaller.
pub fn discover_relations(core: &CoreTensor, top_k: usize) -> Vec<Relation> {
    let mut ids: Vec<usize> = (0..core.nnz()).collect();
    ids.sort_by(|&a, &b| {
        core.value(b)
            .abs()
            .partial_cmp(&core.value(a).abs())
            .expect("finite core values")
            .then(a.cmp(&b))
    });
    ids.truncate(top_k);
    ids.into_iter()
        .map(|e| Relation {
            index: core.index(e).to_vec(),
            strength: core.value(e),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> CoreTensor {
        CoreTensor::from_entries(
            vec![2, 3],
            vec![
                (vec![0, 0], 0.5),
                (vec![0, 1], -3.0),
                (vec![0, 2], 1.0),
                (vec![1, 0], 2.0),
                (vec![1, 2], -0.25),
            ],
        )
        .unwrap()
    }

    #[test]
    fn top_relations_by_magnitude() {
        let rels = discover_relations(&core(), 3);
        assert_eq!(rels.len(), 3);
        assert_eq!(rels[0].index, vec![0, 1]);
        assert_eq!(rels[0].strength, -3.0);
        assert_eq!(rels[1].index, vec![1, 0]);
        assert_eq!(rels[2].index, vec![0, 2]);
    }

    #[test]
    fn top_k_larger_than_core_returns_all() {
        let rels = discover_relations(&core(), 100);
        assert_eq!(rels.len(), 5);
    }

    #[test]
    fn zero_k_returns_empty() {
        assert!(discover_relations(&core(), 0).is_empty());
    }

    #[test]
    fn deterministic_tiebreak() {
        let tied = CoreTensor::from_entries(
            vec![2, 2],
            vec![(vec![0, 0], 1.0), (vec![0, 1], -1.0), (vec![1, 0], 1.0)],
        )
        .unwrap();
        let rels = discover_relations(&tied, 2);
        assert_eq!(rels[0].index, vec![0, 0]);
        assert_eq!(rels[1].index, vec![0, 1]);
    }
}
