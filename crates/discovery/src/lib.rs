//! Concept and relation discovery on fitted Tucker models (Section V of the
//! P-Tucker paper).
//!
//! * **Concept discovery** ([`kmeans`], [`discover_concepts`]): each row of
//!   a factor matrix is the latent feature vector of one object (movie,
//!   user, …); K-means clustering over those rows surfaces groups such as
//!   the `Thriller` / `Comedy` / `Drama` movie concepts of Table V.
//! * **Relation discovery** ([`discover_relations`]): a core entry
//!   `(j₁, …, j_N)` couples column `jₙ` of every factor with strength
//!   `G_{(j₁,…,j_N)}`; the largest-magnitude entries therefore name the
//!   strongest cross-mode relations (Table VI's `(year, hour)` pairs).
//! * [`cluster_purity`] scores discovered clusters against planted
//!   ground-truth labels, which is how the reproduction quantifies what the
//!   paper shows anecdotally.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)]

mod concepts;
mod kmeans;
mod relations;

pub use concepts::{discover_concepts, Concepts};
pub use kmeans::{cluster_purity, kmeans, KMeansResult};
pub use relations::{discover_relations, Relation};
