//! Tucker-CSF (Smith & Karypis, Euro-Par 2017): HOOI accelerated by a
//! **compressed sparse fiber** (CSF) tensor representation.
//!
//! The bottleneck of sparse HOOI is the tensor-times-matrix chain (TTMc)
//! `Y₍ₙ₎ = X₍ₙ₎ (⊗_{k≠n} A⁽ᵏ⁾)`. CSF stores the nonzeros as a forest of
//! prefix-compressed paths (one tree level per mode); TTMc then walks each
//! tree bottom-up, computing the Kronecker-product row contributions once
//! per *shared prefix* instead of once per nonzero — the flop savings that
//! make Tucker-CSF the speed-focused baseline in the paper's comparison.
//!
//! The TTMc output `Y ∈ R^{Iₙ × Π_{k≠n}Jₖ}` is dense and metered: its
//! `O(I·J^{N-1})` footprint is exactly the memory column of Table III.

use crate::common::{run_hooi_loop, BaselineOptions};
use ptucker::{FitResult, PtuckerError, Result};
use ptucker_linalg::{leading_left_singular_vectors, Matrix};
use ptucker_sched::parallel_for;
use ptucker_tensor::SparseTensor;

/// A compressed-sparse-fiber view of a sparse tensor, rooted at one mode.
///
/// Level `0` nodes are the distinct root-mode indices; each deeper level
/// compresses the shared index prefixes of the sorted nonzeros. Leaves
/// (deepest level) carry the values.
#[derive(Debug, Clone)]
pub struct CsfTensor {
    /// `mode_order[0]` is the root mode; deeper levels follow ascending
    /// order of the remaining modes.
    mode_order: Vec<usize>,
    /// `idx[level][node]` = tensor index (in `mode_order[level]`) of a node.
    idx: Vec<Vec<usize>>,
    /// `ptr[level][node] .. ptr[level][node+1]` = children in `level+1`
    /// (present for levels `0 .. order-1`).
    ptr: Vec<Vec<usize>>,
    /// Values aligned with the deepest level's nodes.
    values: Vec<f64>,
}

impl CsfTensor {
    /// Builds the CSF forest rooted at `root_mode` (sorts the nonzeros once).
    ///
    /// # Panics
    /// Panics if `root_mode >= x.order()` or `x.order() < 2`.
    pub fn new(x: &SparseTensor, root_mode: usize) -> Self {
        let order = x.order();
        assert!(order >= 2, "CSF requires order >= 2");
        assert!(root_mode < order, "root mode out of range");
        let mut mode_order = Vec::with_capacity(order);
        mode_order.push(root_mode);
        mode_order.extend((0..order).filter(|&k| k != root_mode));

        let mut ids: Vec<usize> = (0..x.nnz()).collect();
        ids.sort_unstable_by(|&a, &b| {
            let ia = x.index(a);
            let ib = x.index(b);
            for &m in &mode_order {
                match ia[m].cmp(&ib[m]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });

        let mut idx: Vec<Vec<usize>> = vec![Vec::new(); order];
        let mut ptr: Vec<Vec<usize>> = vec![Vec::new(); order.saturating_sub(1)];
        let mut values = Vec::with_capacity(x.nnz());
        let mut prev: Option<&[usize]> = None;
        let mut prev_idx_buf: Vec<usize> = Vec::new();

        for &e in &ids {
            let cur = x.index(e);
            // First level at which the path diverges from the previous one.
            let diverge = match prev {
                None => 0,
                Some(_) => {
                    let mut d = order;
                    for (lvl, &m) in mode_order.iter().enumerate() {
                        if prev_idx_buf[m] != cur[m] {
                            d = lvl;
                            break;
                        }
                    }
                    // Identical full paths cannot occur (entries unique),
                    // but be safe: re-open at the leaf.
                    if d == order {
                        d = order - 1;
                    }
                    d
                }
            };
            for (lvl, &m) in mode_order.iter().enumerate().skip(diverge) {
                if lvl < order - 1 {
                    ptr[lvl].push(idx[lvl + 1].len());
                }
                idx[lvl].push(cur[m]);
            }
            values.push(x.value(e));
            prev_idx_buf = cur.to_vec();
            prev = Some(&[]); // marker: prev_idx_buf is now valid
        }
        // Close the child ranges with sentinels.
        for lvl in 0..order.saturating_sub(1) {
            ptr[lvl].push(idx[lvl + 1].len());
        }

        CsfTensor {
            mode_order,
            idx,
            ptr,
            values,
        }
    }

    /// The root mode of this forest.
    pub fn root_mode(&self) -> usize {
        self.mode_order[0]
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of root nodes (distinct root-mode indices with data).
    pub fn num_roots(&self) -> usize {
        self.idx[0].len()
    }

    /// TTMc for the root mode: fills `y` (`Iₙ × Π_{k≠n} Jₖ`, zeroed here)
    /// with `Y[iₙ, :] = Σ_{α∈Ω⁽ⁿ⁾ᵢₙ} X_α ⊗_{ℓ≥1} a⁽ᵏℓ⁾(i_{kℓ}, :)`, where the
    /// Kronecker ordering follows `mode_order[1..]` (outer → inner). Column
    /// ordering is irrelevant to the downstream SVD.
    ///
    /// Root subtrees are independent, so they are processed in parallel.
    ///
    /// # Panics
    /// Panics if `y`'s shape does not match `(Iₙ, Π_{k≠n} Jₖ)` or a factor
    /// is missing.
    pub fn ttmc(&self, factors: &[Matrix], y: &mut Matrix, threads: usize) {
        let order = self.mode_order.len();
        // Factors reordered to CSF level order.
        let f_ord: Vec<&Matrix> = self.mode_order.iter().map(|&m| &factors[m]).collect();
        let m_cols: usize = f_ord[1..].iter().map(|f| f.cols()).product();
        assert_eq!(y.cols(), m_cols, "TTMc output has wrong column count");
        y.as_mut_slice().fill(0.0);

        // Subtree-vector lengths per level: v_len[ℓ] = Π_{m=ℓ}^{order-1} J.
        let mut v_len = vec![1usize; order + 1];
        for lvl in (1..order).rev() {
            v_len[lvl] = v_len[lvl + 1] * f_ord[lvl].cols();
        }

        let n_roots = self.num_roots();
        // Each root owns a distinct output row, so rows can be processed
        // concurrently. Hand every root exclusive access to its row through
        // a per-root cell (taken exactly once — the lock is uncontended and
        // exists only to satisfy the aliasing rules without `unsafe`).
        let y_cols = y.cols();
        let mut root_of_row: Vec<Option<usize>> = vec![None; y.rows()];
        for (r, &i) in self.idx[0].iter().enumerate() {
            root_of_row[i] = Some(r);
        }
        let mut cells: Vec<parking_lot::Mutex<Option<(usize, &mut [f64])>>> =
            Vec::with_capacity(n_roots);
        for (row_i, slice) in y.as_mut_slice().chunks_mut(y_cols).enumerate() {
            if let Some(r) = root_of_row[row_i] {
                cells.push(parking_lot::Mutex::new(Some((r, slice))));
            }
        }
        debug_assert_eq!(cells.len(), n_roots);

        parallel_for(
            cells.len(),
            threads,
            ptucker_sched::Schedule::Dynamic { chunk: 1 },
            |c| {
                let (r, row) = cells[c].lock().take().expect("root visited once");
                let mut scratch: Vec<Vec<f64>> =
                    (2..order).map(|lvl| vec![0.0; v_len[lvl]]).collect();
                let lo = self.ptr[0][r];
                let hi = self.ptr[0][r + 1];
                for child in lo..hi {
                    self.accumulate(1, child, &f_ord, row, &mut scratch);
                }
            },
        );
    }

    /// Adds `kron(row_{level}, Σ_children subtree)` into `sum_out`
    /// (bottom-up CSF TTMc kernel).
    fn accumulate(
        &self,
        level: usize,
        node: usize,
        f_ord: &[&Matrix],
        sum_out: &mut [f64],
        scratch: &mut [Vec<f64>],
    ) {
        let order = self.mode_order.len();
        let row = f_ord[level].row(self.idx[level][node]);
        if level == order - 1 {
            // Leaf: contribute value · factor row.
            let v = self.values[node];
            for (o, &r) in sum_out.iter_mut().zip(row) {
                *o += v * r;
            }
            return;
        }
        let (child_sum, rest) = scratch.split_first_mut().expect("scratch per level");
        child_sum.fill(0.0);
        let lo = self.ptr[level][node];
        let hi = self.ptr[level][node + 1];
        for child in lo..hi {
            self.accumulate(level + 1, child, f_ord, child_sum, rest);
        }
        // sum_out += row ⊗ child_sum.
        let q = child_sum.len();
        for (i, &rv) in row.iter().enumerate() {
            if rv == 0.0 {
                continue;
            }
            let off = i * q;
            for (j, &cv) in child_sum.iter().enumerate() {
                sum_out[off + j] += rv * cv;
            }
        }
    }
}

/// Runs Tucker-CSF: HOOI with CSF-accelerated TTMc.
///
/// # Errors
/// * [`PtuckerError::OutOfMemory`] when a `Iₙ × Π_{k≠n}Jₖ` TTMc output does
///   not fit the budget.
/// * [`PtuckerError::InvalidConfig`] for shape violations (including
///   `Jₙ > Π_{k≠n}Jₖ`, which the Gram SVD cannot serve).
pub fn tucker_csf(x: &SparseTensor, opts: &BaselineOptions) -> Result<FitResult> {
    opts.validate_for(x.dims())?;
    if x.order() < 2 {
        return Err(PtuckerError::InvalidConfig(
            "tucker-csf requires order >= 2".into(),
        ));
    }
    for n in 0..x.order() {
        let m: usize = (0..x.order())
            .filter(|&k| k != n)
            .map(|k| opts.ranks[k])
            .product();
        if opts.ranks[n] > m {
            return Err(PtuckerError::InvalidConfig(format!(
                "rank J_{n} = {} exceeds Π_(k≠{n}) J_k = {m}",
                opts.ranks[n]
            )));
        }
    }
    // One CSF forest per mode, built once (the paper configures SPLATT with
    // one CSF allocation reused across modes; we trade that memory saving
    // for per-mode forests, which does not change the intermediate-data
    // accounting — CSF storage is input-scale, not intermediate).
    let forests: Vec<CsfTensor> = (0..x.order()).map(|n| CsfTensor::new(x, n)).collect();
    let dims = x.dims().to_vec();
    let ranks = opts.ranks.clone();
    let threads = opts.threads;
    let budget = opts.budget.clone();

    run_hooi_loop(x, opts, move |factors, n| {
        let m: usize = (0..dims.len())
            .filter(|&k| k != n)
            .map(|k| ranks[k])
            .product();
        let _y_reservation = budget.reserve_f64(dims[n] * m)?;
        let mut y = Matrix::zeros(dims[n], m);
        forests[n].ttmc(factors, &mut y, threads);
        let svd = leading_left_singular_vectors(&y, ranks[n])?;
        factors[n] = svd.u;
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::init_factors;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_tensor() -> SparseTensor {
        let mut rng = StdRng::seed_from_u64(5);
        ptucker_datagen::uniform_sparse(&[6, 5, 4], 40, &mut rng)
    }

    /// Brute-force TTMc: Y[i_n, :] = Σ_α X_α ⊗_{levels≥1} rows, with the
    /// same Kronecker ordering CSF uses (mode_order[1..], outer→inner).
    fn ttmc_bruteforce(x: &SparseTensor, factors: &[Matrix], n: usize) -> Matrix {
        let order = x.order();
        let mode_order: Vec<usize> = std::iter::once(n)
            .chain((0..order).filter(|&k| k != n))
            .collect();
        let m: usize = mode_order[1..].iter().map(|&k| factors[k].cols()).product();
        let mut y = Matrix::zeros(x.dims()[n], m);
        for (idx, v) in x.iter() {
            // kron across mode_order[1..]
            let mut vec = vec![v];
            for &k in &mode_order[1..] {
                let row = factors[k].row(idx[k]);
                let mut next = Vec::with_capacity(vec.len() * row.len());
                for &a in &vec {
                    for &b in row {
                        next.push(a * b);
                    }
                }
                vec = next;
            }
            for (j, &val) in vec.iter().enumerate() {
                y[(idx[n], j)] += val;
            }
        }
        y
    }

    #[test]
    fn csf_structure_roundtrip() {
        let x = sample_tensor();
        for n in 0..3 {
            let csf = CsfTensor::new(&x, n);
            assert_eq!(csf.nnz(), x.nnz());
            assert_eq!(csf.root_mode(), n);
            assert!(csf.num_roots() <= x.dims()[n]);
        }
    }

    #[test]
    fn ttmc_matches_bruteforce_all_modes() {
        let x = sample_tensor();
        let factors = init_factors(x.dims(), &[2, 3, 2], 11);
        for n in 0..3 {
            let csf = CsfTensor::new(&x, n);
            let m: usize = (0..3)
                .filter(|&k| k != n)
                .map(|k| factors[k].cols())
                .product();
            let mut y = Matrix::zeros(x.dims()[n], m);
            csf.ttmc(&factors, &mut y, 3);
            let want = ttmc_bruteforce(&x, &factors, n);
            for (a, b) in y.as_slice().iter().zip(want.as_slice()) {
                assert!((a - b).abs() < 1e-10, "mode {n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn ttmc_parallel_matches_serial() {
        let x = sample_tensor();
        let factors = init_factors(x.dims(), &[2, 2, 2], 3);
        let csf = CsfTensor::new(&x, 0);
        let m = 4;
        let mut y1 = Matrix::zeros(x.dims()[0], m);
        let mut y4 = Matrix::zeros(x.dims()[0], m);
        csf.ttmc(&factors, &mut y1, 1);
        csf.ttmc(&factors, &mut y4, 4);
        for (a, b) in y1.as_slice().iter().zip(y4.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn csf_hooi_matches_dense_hooi_error() {
        // On the same data/seed, CSF-HOOI and dense HOOI compute the same
        // mathematical iteration; errors must agree closely.
        let x = sample_tensor();
        let opts = BaselineOptions::new(vec![2, 2, 2])
            .max_iters(5)
            .tol(0.0)
            .seed(9);
        let csf = tucker_csf(&x, &opts).unwrap();
        let dense = crate::hooi::tucker_als(&x, &opts).unwrap();
        let a = csf.stats.final_error;
        let b = dense.stats.final_error;
        assert!((a - b).abs() < 1e-6 * a.max(1.0), "csf {a} vs dense {b}");
    }

    #[test]
    fn csf_4way_runs() {
        let mut rng = StdRng::seed_from_u64(8);
        let x = ptucker_datagen::uniform_sparse(&[5, 4, 3, 3], 30, &mut rng);
        let opts = BaselineOptions::new(vec![2, 2, 2, 2]).max_iters(3).seed(1);
        let r = tucker_csf(&x, &opts).unwrap();
        assert!(r.stats.final_error.is_finite());
        assert_eq!(r.decomposition.factors.len(), 4);
    }

    #[test]
    fn oom_with_tiny_budget() {
        let x = sample_tensor();
        let opts =
            BaselineOptions::new(vec![2, 2, 2]).budget(ptucker_memtrack::MemoryBudget::new(32));
        assert!(matches!(
            tucker_csf(&x, &opts).unwrap_err(),
            PtuckerError::OutOfMemory(_)
        ));
    }
}
