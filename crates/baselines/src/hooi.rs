//! The classic dense Tucker-ALS / HOOI (Algorithm 1 of the paper; De
//! Lathauwer et al.'s higher-order orthogonal iteration).
//!
//! Missing entries are treated as **zeros**: the method materializes the
//! full dense tensor and iterates `Y ← X ×_{k≠n} A⁽ᵏ⁾ᵀ`,
//! `A⁽ⁿ⁾ ← Jₙ leading left singular vectors of Y₍ₙ₎`. Both the dense
//! materialization (`Π Iₙ` cells) and the first mode-product intermediate
//! are metered, which is what makes this method the first to hit O.O.M. as
//! tensors grow — the "intermediate data explosion" the paper's
//! Definition 7 formalizes.

use crate::common::{hooi_core, init_factors, observed_sse, BaselineOptions};
use ptucker::{FitResult, FitStats, IterStats, PtuckerError, Result, TuckerDecomposition};
use ptucker_linalg::leading_left_singular_vectors;
use ptucker_tensor::{DenseTensor, SparseTensor};
use std::time::Instant;

/// Runs dense Tucker-ALS (HOOI) on the zero-imputed tensor.
///
/// # Errors
/// * [`PtuckerError::OutOfMemory`] when `2·Π Iₙ` doubles exceed the budget
///   (dense tensor + largest mode-product intermediate).
/// * [`PtuckerError::InvalidConfig`] for shape violations.
/// * Propagated linear-algebra failures.
pub fn tucker_als(x: &SparseTensor, opts: &BaselineOptions) -> Result<FitResult> {
    opts.validate_for(x.dims())?;
    if x.order() < 2 {
        return Err(PtuckerError::InvalidConfig(
            "tucker-als requires order >= 2".into(),
        ));
    }
    let t0 = Instant::now();
    opts.budget.reset_peak();

    // Dense materialization: Π Iₙ cells for X plus roughly the same again
    // for the largest intermediate of the mode-product chain.
    let total_cells = x
        .dims()
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or_else(|| {
            PtuckerError::OutOfMemory(ptucker_memtrack::OutOfMemory {
                requested: usize::MAX,
                in_use: opts.budget.in_use(),
                budget: opts.budget.budget(),
            })
        })?;
    let _dense_reservation = opts.budget.reserve_f64(2 * total_cells)?;

    let mut dense = DenseTensor::zeros(x.dims().to_vec())?;
    for (idx, v) in x.iter() {
        dense.set(idx, v);
    }

    let mut factors = init_factors(x.dims(), &opts.ranks, opts.seed);
    for f in factors.iter_mut() {
        *f = f.qr()?.into_parts().0; // HOOI assumes orthonormal factors
    }

    let order = x.order();
    let mut iterations = Vec::with_capacity(opts.max_iters);
    let mut prev_err = f64::INFINITY;
    let mut converged = false;

    for iter in 0..opts.max_iters {
        let t_iter = Instant::now();
        for n in 0..order {
            // Y ← X ×_{k≠n} A⁽ᵏ⁾ᵀ (Algorithm 1 line 4).
            let mut y = dense.clone();
            for k in 0..order {
                if k == n {
                    continue;
                }
                y = y.mode_product(k, &factors[k].transpose())?;
            }
            let y_mat = y.matricize(n);
            let svd = leading_left_singular_vectors(&y_mat, opts.ranks[n])?;
            factors[n] = svd.u;
        }
        let core = hooi_core(x, &factors, &opts.ranks, opts.threads);
        let err = observed_sse(x, &factors, &core, opts.threads).sqrt();
        iterations.push(IterStats {
            iter,
            reconstruction_error: err,
            seconds: t_iter.elapsed().as_secs_f64(),
            core_nnz: core.nnz(),
        });
        if err.is_finite()
            && prev_err.is_finite()
            && (prev_err - err).abs() <= opts.tol * prev_err.max(f64::EPSILON)
        {
            converged = true;
            break;
        }
        prev_err = err;
    }

    let core = hooi_core(x, &factors, &opts.ranks, opts.threads);
    let final_error = observed_sse(x, &factors, &core, opts.threads).sqrt();
    Ok(FitResult {
        decomposition: TuckerDecomposition { factors, core },
        stats: FitStats {
            iterations,
            converged,
            total_seconds: t0.elapsed().as_secs_f64(),
            peak_intermediate_bytes: opts.budget.peak(),
            peak_spilled_bytes: 0,
            final_error,
            bytes_sent: 0,
            bytes_received: 0,
            io_read_bytes: 0,
            io_write_bytes: 0,
            prefetch_engaged: false,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptucker_memtrack::MemoryBudget;
    use ptucker_tensor::CoreTensor;

    /// A fully observed low-rank 3-way tensor (every cell present).
    fn full_lowrank() -> SparseTensor {
        let factors = init_factors(&[6, 5, 4], &[2, 2, 2], 42);
        let core =
            CoreTensor::dense_from_fn(vec![2, 2, 2], |i| 1.0 + (i[0] + i[1] + i[2]) as f64 * 0.5)
                .unwrap();
        let mut entries = Vec::new();
        for i0 in 0..6 {
            for i1 in 0..5 {
                for i2 in 0..4 {
                    let mut v = 0.0;
                    for (beta, g) in core.iter() {
                        v += g
                            * factors[0][(i0, beta[0])]
                            * factors[1][(i1, beta[1])]
                            * factors[2][(i2, beta[2])];
                    }
                    entries.push((vec![i0, i1, i2], v));
                }
            }
        }
        SparseTensor::new(vec![6, 5, 4], entries).unwrap()
    }

    #[test]
    fn recovers_fully_observed_lowrank_exactly() {
        let x = full_lowrank();
        let opts = BaselineOptions::new(vec![2, 2, 2]).max_iters(10).seed(3);
        let r = tucker_als(&x, &opts).unwrap();
        // HOOI on a fully observed rank-(2,2,2) tensor is exact.
        let rel = r.stats.final_error / x.frobenius_norm();
        assert!(rel < 1e-8, "relative error {rel}");
        assert!(r.decomposition.orthogonality_defect() < 1e-8);
    }

    #[test]
    fn error_nonincreasing() {
        let x = full_lowrank();
        let opts = BaselineOptions::new(vec![2, 2, 2])
            .max_iters(6)
            .tol(0.0)
            .seed(5);
        let r = tucker_als(&x, &opts).unwrap();
        let errs: Vec<f64> = r
            .stats
            .iterations
            .iter()
            .map(|s| s.reconstruction_error)
            .collect();
        for w in errs.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "HOOI error increased: {w:?}");
        }
    }

    #[test]
    fn oom_on_tiny_budget() {
        let x = full_lowrank();
        let opts = BaselineOptions::new(vec![2, 2, 2]).budget(MemoryBudget::new(64));
        assert!(matches!(
            tucker_als(&x, &opts).unwrap_err(),
            PtuckerError::OutOfMemory(_)
        ));
    }

    #[test]
    fn order_one_rejected() {
        let x = SparseTensor::new(vec![4], vec![(vec![0], 1.0)]).unwrap();
        let opts = BaselineOptions::new(vec![1]);
        assert!(matches!(
            tucker_als(&x, &opts).unwrap_err(),
            PtuckerError::InvalidConfig(_)
        ));
    }
}
