//! S-HOT (Oh et al., WSDM 2017): scalable high-order Tucker decomposition
//! via **on-the-fly** TTMc.
//!
//! Tucker-CSF materializes the `Iₙ × J^{N-1}` TTMc output `Y₍ₙ₎` before its
//! SVD — the *M-bottleneck*. S-HOT never materializes `Y`: it computes the
//! leading left singular subspace with an iterative method whose matrix–
//! vector products stream over the nonzeros, keeping intermediates at
//! `O(J^{N-1})` scale (Table III). The original uses implicitly-restarted
//! Arnoldi; this reproduction uses warm-started **subspace iteration**
//! (numerically equivalent for the dominant subspace HOOI needs), with
//! `Yᵀ·U` and `Y·V` evaluated entry-by-entry through on-the-fly
//! Kronecker rows.

use crate::common::{run_hooi_loop, BaselineOptions};
use ptucker::{FitResult, PtuckerError, Result};
use ptucker_linalg::kernels::axpy;
use ptucker_linalg::Matrix;
use ptucker_sched::{parallel_reduce_with, parallel_rows_mut_balanced, Schedule};
use ptucker_tensor::{ModeStreams, SparseTensor};

/// Inner subspace-iteration sweeps per mode update. Warm starting from the
/// previous factor makes a handful of sweeps sufficient; this constant
/// trades a little accuracy for speed exactly like the original's Arnoldi
/// iteration cap.
const INNER_SWEEPS: usize = 5;

/// Expands the running Kronecker product in `buf` by one factor row
/// (`buf ← buf ⊗ row`, via the `tmp` ping-pong buffer).
#[inline]
fn kron_expand(buf: &mut Vec<f64>, tmp: &mut Vec<f64>, row: &[f64]) {
    tmp.clear();
    tmp.reserve(buf.len() * row.len());
    for &a in buf.iter() {
        for &b in row {
            tmp.push(a * b);
        }
    }
    std::mem::swap(buf, tmp);
}

/// Computes the on-the-fly Kronecker row `⊗_{k≠n} a⁽ᵏ⁾(iₖ, :)` for one
/// nonzero from its COO multi-index (ascending `k`, skipping `n`),
/// writing into `buf`/`tmp` and returning the filled length.
#[inline]
fn kron_row(
    idx: &[usize],
    mode: usize,
    factors: &[Matrix],
    buf: &mut Vec<f64>,
    tmp: &mut Vec<f64>,
) -> usize {
    buf.clear();
    buf.push(1.0);
    for (k, factor) in factors.iter().enumerate() {
        if k == mode {
            continue;
        }
        kron_expand(buf, tmp, factor.row(idx[k]));
    }
    buf.len()
}

/// [`kron_row`] from a `ModeStream`'s packed other-mode indices (already
/// ascending with `mode` skipped — the identical product order).
#[inline]
fn kron_row_packed(
    others: &[u32],
    mode: usize,
    factors: &[Matrix],
    buf: &mut Vec<f64>,
    tmp: &mut Vec<f64>,
) -> usize {
    buf.clear();
    buf.push(1.0);
    let mut slot = 0;
    for (k, factor) in factors.iter().enumerate() {
        if k == mode {
            continue;
        }
        kron_expand(buf, tmp, factor.row(others[slot] as usize));
        slot += 1;
    }
    buf.len()
}

/// Runs S-HOT: HOOI with on-the-fly TTMc (no `Y` materialization).
///
/// # Errors
/// * [`PtuckerError::OutOfMemory`] when the `O(J^{N-1}·Jₙ)` iteration
///   buffers exceed the budget (they are tiny by design — that is S-HOT's
///   point).
/// * [`PtuckerError::InvalidConfig`] for shape violations.
pub fn s_hot(x: &SparseTensor, opts: &BaselineOptions) -> Result<FitResult> {
    opts.validate_for(x.dims())?;
    if x.order() < 2 {
        return Err(PtuckerError::InvalidConfig(
            "s-hot requires order >= 2".into(),
        ));
    }
    for n in 0..x.order() {
        let m: usize = (0..x.order())
            .filter(|&k| k != n)
            .map(|k| opts.ranks[k])
            .product();
        if opts.ranks[n] > m {
            return Err(PtuckerError::InvalidConfig(format!(
                "rank J_{n} = {} exceeds Π_(k≠{n}) J_k = {m}",
                opts.ranks[n]
            )));
        }
    }
    let dims = x.dims().to_vec();
    let ranks = opts.ranks.clone();
    let threads = opts.threads;
    let budget = opts.budget.clone();
    // The mode-major plan for the W-phase's row loop (the same streamed
    // slice layout the P-Tucker engine runs on). Like the CSF baseline's
    // compressed tree, this is a re-layout of the tensor itself, not
    // per-iteration intermediate data, so it stays outside Definition 7's
    // accounting and the cross-method O.O.M. boundaries keep comparing
    // algorithmic intermediates (Table III). The P-Tucker engine meters
    // its own plan anyway — the stricter reading; see the note in
    // crates/core/src/als.rs.
    let streams = ModeStreams::build(x)?;

    run_hooi_loop(x, opts, move |factors, n| {
        let m: usize = (0..dims.len())
            .filter(|&k| k != n)
            .map(|k| ranks[k])
            .product();
        let j_n = ranks[n];
        let i_n = dims[n];
        // Iteration buffers, all `O(J^{N-1})`-scale per Table III: the
        // shared Z (M×Jₙ), one Z accumulator per worker (M×Jₙ — the
        // Z-phase scatters across kron positions, so workers need private
        // copies), and the per-worker Kronecker row ping-pong (2M). The
        // W iterate is factor-shaped and computed row-parallel in place,
        // so it carries no per-worker copies and — like the factor
        // matrices themselves — is excluded from intermediate-data
        // accounting (Definition 7).
        let t = threads.max(1);
        let _scratch = budget.reserve_f64(m * j_n + t * (m * j_n + 2 * m))?;

        // Per-worker states — (Z accumulator, Kronecker buf, Kronecker
        // tmp) — allocated once per mode update and reused across all
        // subspace sweeps (`parallel_reduce_with`/`parallel_rows_mut_with`
        // hand worker `b` exclusive access to `states[b]`).
        let mut states: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = (0..t)
            .map(|_| (Vec::new(), Vec::new(), Vec::new()))
            .collect();
        let mut z = Matrix::zeros(m, j_n);
        let mut w = Matrix::zeros(i_n, j_n);

        // Warm start from the current factor (already orthonormal).
        let mut u = factors[n].clone();
        for _ in 0..INNER_SWEEPS {
            // Z = Yᵀ U, computed as Σ_α X_α · k_α ⊗ U[iₙ(α), :].
            for (acc, _, _) in states.iter_mut() {
                acc.clear();
                acc.resize(m * j_n, 0.0);
            }
            {
                let u_ref = &u;
                parallel_reduce_with(
                    x.nnz(),
                    threads,
                    Schedule::Static,
                    &mut states,
                    |(zacc, kbuf, ktmp), e| {
                        let idx = x.index(e);
                        let xv = x.value(e);
                        let len = kron_row(idx, n, factors, kbuf, ktmp);
                        debug_assert_eq!(len, m);
                        let u_row = u_ref.row(idx[n]);
                        for (r, &kv) in kbuf.iter().enumerate() {
                            if kv == 0.0 {
                                continue;
                            }
                            // Z[r, :] += (X_α·k_α[r]) · U[iₙ, :] — the
                            // axpy micro-kernel (SIMD under `--features
                            // simd`), like the engine's δ accumulation.
                            let off = r * j_n;
                            axpy(xv * kv, u_row, &mut zacc[off..off + j_n]);
                        }
                    },
                );
            }
            combine_states(&states, z.as_mut_slice());

            // W = Y Z, row-parallel over mode-n slices (the same shape as
            // the P-Tucker row update): W[i, :] = Σ_{α∈Ωᵢ} X_α · (k_αᵀ Z).
            // The slice is walked through the mode's stream — contiguous
            // values and packed other-mode indices — with contiguous row
            // blocks balanced by |Ω⁽ⁿ⁾ᵢ| (work per row is nnz-proportional
            // here exactly as in the P-Tucker row update). Rows are
            // disjoint and per-row sum order is fixed — deterministic for
            // any thread count.
            {
                let z_ref = &z;
                let stream = streams.mode(n);
                parallel_rows_mut_balanced(
                    w.as_mut_slice(),
                    j_n,
                    threads,
                    |i| stream.slice_len(i),
                    &mut states,
                    |(_, kbuf, ktmp), i, wrow| {
                        wrow.fill(0.0);
                        let values = stream.values();
                        let k_others = stream.other_count();
                        let others = stream.others_flat();
                        for pos in stream.slice_range(i) {
                            let xv = values.at(pos);
                            kron_row_packed(
                                &others[pos * k_others..(pos + 1) * k_others],
                                n,
                                factors,
                                kbuf,
                                ktmp,
                            );
                            for (r, &kv) in kbuf.iter().enumerate() {
                                if kv == 0.0 {
                                    continue;
                                }
                                // W[i, :] += (X_α·k_α[r]) · Z[r, :]: the
                                // W-phase inner loop is one contiguous
                                // axpy per kron position — the last
                                // scalar-style walk in this baseline,
                                // now on the shared micro-kernels.
                                axpy(xv * kv, z_ref.row(r), wrow);
                            }
                        }
                    },
                );
            }
            u = w.qr()?.into_parts().0;
        }
        factors[n] = u;
        Ok(())
    })
}

/// Sums per-worker accumulators into `out` (fixed worker order, so the
/// combination is deterministic for a given thread count).
fn combine_states(states: &[(Vec<f64>, Vec<f64>, Vec<f64>)], out: &mut [f64]) {
    out.fill(0.0);
    for (acc, _, _) in states {
        for (o, a) in out.iter_mut().zip(acc) {
            *o += a;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_tensor() -> SparseTensor {
        let mut rng = StdRng::seed_from_u64(5);
        ptucker_datagen::uniform_sparse(&[6, 5, 4], 40, &mut rng)
    }

    #[test]
    fn shot_matches_csf_subspace_quality() {
        // Both are HOOI; started from the same seed they should reach
        // errors within a small factor of each other.
        let x = sample_tensor();
        let opts = BaselineOptions::new(vec![2, 2, 2])
            .max_iters(6)
            .tol(0.0)
            .seed(9);
        let shot = s_hot(&x, &opts).unwrap();
        let csf = crate::csf::tucker_csf(&x, &opts).unwrap();
        let a = shot.stats.final_error;
        let b = csf.stats.final_error;
        assert!((a - b).abs() < 0.05 * b.max(1e-9), "s-hot {a} vs csf {b}");
    }

    #[test]
    fn shot_error_nonincreasing_after_first() {
        let x = sample_tensor();
        let opts = BaselineOptions::new(vec![2, 2, 2])
            .max_iters(5)
            .tol(0.0)
            .seed(2);
        let r = s_hot(&x, &opts).unwrap();
        let errs: Vec<f64> = r
            .stats
            .iterations
            .iter()
            .map(|s| s.reconstruction_error)
            .collect();
        // Subspace iteration is approximate, so allow tiny wiggle.
        for w in errs.windows(2) {
            assert!(w[1] <= w[0] * 1.01 + 1e-9, "errors: {errs:?}");
        }
    }

    #[test]
    fn shot_factors_orthonormal() {
        let x = sample_tensor();
        let opts = BaselineOptions::new(vec![2, 2, 2]).max_iters(3).seed(4);
        let r = s_hot(&x, &opts).unwrap();
        assert!(r.decomposition.orthogonality_defect() < 1e-10);
    }

    #[test]
    fn shot_memory_far_below_csf() {
        // The entire point of S-HOT: intermediates are J^{N-1}-scale, not
        // I·J^{N-1}-scale. With I ≫ J the peaks must differ substantially.
        let mut rng = StdRng::seed_from_u64(6);
        let x = ptucker_datagen::uniform_sparse(&[200, 200, 200], 500, &mut rng);
        let opts = BaselineOptions::new(vec![4, 4, 4])
            .max_iters(1)
            .threads(1)
            .seed(7);
        let shot = s_hot(&x, &opts).unwrap();
        let csf = crate::csf::tucker_csf(&x, &opts).unwrap();
        assert!(
            shot.stats.peak_intermediate_bytes * 10 < csf.stats.peak_intermediate_bytes,
            "shot {} vs csf {}",
            shot.stats.peak_intermediate_bytes,
            csf.stats.peak_intermediate_bytes
        );
    }

    #[test]
    fn shot_4way_runs() {
        let mut rng = StdRng::seed_from_u64(8);
        let x = ptucker_datagen::uniform_sparse(&[5, 4, 3, 3], 30, &mut rng);
        let opts = BaselineOptions::new(vec![2, 2, 2, 2]).max_iters(2).seed(1);
        let r = s_hot(&x, &opts).unwrap();
        assert!(r.stats.final_error.is_finite());
    }
}
