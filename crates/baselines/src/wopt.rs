//! Tucker-wOpt (Filipović & Jukić 2015): Tucker factorization with missing
//! data by direct weighted optimization.
//!
//! Like P-Tucker, wOpt minimizes the loss over **observed entries only** —
//! it is the accuracy-focused competitor in the paper. Unlike P-Tucker, it
//! optimizes all parameters jointly with a nonlinear conjugate gradient
//! method whose gradients are evaluated through *dense* tensor algebra:
//!
//! * the full reconstruction `X̂ = G ×₁ A⁽¹⁾ ⋯ ×_N A⁽ᴺ⁾` (`Π Iₙ` cells),
//! * the masked residual `E = W ⊛ (X̂ − X)` (same size), and
//! * per-mode partial products `Tₙ = G ×_{k≠n} A⁽ᵏ⁾` (`Iᴺ⁻¹·Jₙ` cells —
//!   the `O(Iᴺ⁻¹J)` memory row of Table III).
//!
//! Those dense intermediates are metered, which reproduces the paper's
//! observation that wOpt runs out of memory on all but the smallest tensors
//! (O.O.M. for N ≥ 5 at I = 100, and from I = 10³–10⁴ upward at N = 3),
//! and its 10³–10⁴× slow-down where it does run.

use crate::common::{init_factors, observed_sse, BaselineOptions};
use ptucker::{FitResult, FitStats, IterStats, PtuckerError, Result, TuckerDecomposition};
use ptucker_linalg::Matrix;
use ptucker_tensor::{
    delinearize, linearize, row_major_strides, CoreTensor, DenseTensor, SparseTensor,
};
use std::time::Instant;

/// One flattened parameter vector: `[G | A⁽¹⁾ | … | A⁽ᴺ⁾]`.
#[derive(Clone)]
struct Params {
    core: DenseTensor,
    factors: Vec<Matrix>,
}

impl Params {
    fn axpy(&mut self, t: f64, d: &ParamsDelta) {
        for (p, g) in self.core.as_mut_slice().iter_mut().zip(&d.core) {
            *p += t * g;
        }
        for (f, gf) in self.factors.iter_mut().zip(&d.factors) {
            for (p, g) in f.as_mut_slice().iter_mut().zip(gf) {
                *p += t * g;
            }
        }
    }

    /// Overwrites `self` with `other`'s values without reallocating —
    /// the line search's trial point reuses one buffer for all steps.
    fn copy_from(&mut self, other: &Params) {
        self.core
            .as_mut_slice()
            .copy_from_slice(other.core.as_slice());
        for (f, of) in self.factors.iter_mut().zip(&other.factors) {
            f.as_mut_slice().copy_from_slice(of.as_slice());
        }
    }
}

/// Gradient / direction storage with the same layout as [`Params`].
#[derive(Clone)]
struct ParamsDelta {
    core: Vec<f64>,
    factors: Vec<Vec<f64>>,
}

impl ParamsDelta {
    fn zeros_like(p: &Params) -> Self {
        ParamsDelta {
            core: vec![0.0; p.core.len()],
            factors: p
                .factors
                .iter()
                .map(|f| vec![0.0; f.as_slice().len()])
                .collect(),
        }
    }

    fn dot(&self, other: &ParamsDelta) -> f64 {
        let mut acc: f64 = self.core.iter().zip(&other.core).map(|(a, b)| a * b).sum();
        for (f, g) in self.factors.iter().zip(&other.factors) {
            acc += f.iter().zip(g).map(|(a, b)| a * b).sum::<f64>();
        }
        acc
    }

    fn scale_add(&mut self, beta: f64, neg_grad: &ParamsDelta) {
        // d ← -g + beta * d
        for (d, g) in self.core.iter_mut().zip(&neg_grad.core) {
            *d = g + beta * *d;
        }
        for (df, gf) in self.factors.iter_mut().zip(&neg_grad.factors) {
            for (d, g) in df.iter_mut().zip(gf) {
                *d = g + beta * *d;
            }
        }
    }

    fn copy_from(&mut self, other: &ParamsDelta) {
        self.core.copy_from_slice(&other.core);
        for (f, of) in self.factors.iter_mut().zip(&other.factors) {
            f.copy_from_slice(of);
        }
    }

    /// `self ← -g`.
    fn neg_from(&mut self, g: &ParamsDelta) {
        for (d, v) in self.core.iter_mut().zip(&g.core) {
            *d = -v;
        }
        for (df, gf) in self.factors.iter_mut().zip(&g.factors) {
            for (d, v) in df.iter_mut().zip(gf) {
                *d = -v;
            }
        }
    }

    /// `self ← a - b`.
    fn sub_from(&mut self, a: &ParamsDelta, b: &ParamsDelta) {
        for ((d, x), y) in self.core.iter_mut().zip(&a.core).zip(&b.core) {
            *d = x - y;
        }
        for ((df, af), bf) in self.factors.iter_mut().zip(&a.factors).zip(&b.factors) {
            for ((d, x), y) in df.iter_mut().zip(af).zip(bf) {
                *d = x - y;
            }
        }
    }
}

/// Runs Tucker-wOpt with nonlinear conjugate gradients (Polak–Ribière with
/// restarts) and backtracking line search. One "iteration" in the stats is
/// one NCG step, matching the paper's per-iteration timing convention.
///
/// # Errors
/// * [`PtuckerError::OutOfMemory`] when the dense intermediates
///   (`≈ 2·Π Iₙ + Iᴺ⁻¹·Jmax` doubles) exceed the budget — the reproduction
///   of the paper's wOpt O.O.M. columns.
/// * [`PtuckerError::InvalidConfig`] for shape violations.
pub fn tucker_wopt(x: &SparseTensor, opts: &BaselineOptions) -> Result<FitResult> {
    opts.validate_for(x.dims())?;
    if x.order() < 2 {
        return Err(PtuckerError::InvalidConfig(
            "tucker-wopt requires order >= 2".into(),
        ));
    }
    let t0 = Instant::now();
    opts.budget.reset_peak();
    let order = x.order();
    let dims = x.dims().to_vec();

    // Meter the dense intermediates before allocating anything.
    let total_cells = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or_else(|| {
            PtuckerError::OutOfMemory(ptucker_memtrack::OutOfMemory {
                requested: usize::MAX,
                in_use: opts.budget.in_use(),
                budget: opts.budget.budget(),
            })
        })?;
    let tn_cells = (0..order)
        .map(|n| total_cells / dims[n] * opts.ranks[n])
        .max()
        .unwrap_or(0);
    let _dense_reservation = opts.budget.reserve_f64(2 * total_cells + tn_cells)?;

    let mut params = Params {
        core: {
            let mut rng =
                <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(opts.seed.wrapping_add(1));
            let c = CoreTensor::random_dense(opts.ranks.clone(), &mut rng)?;
            c.to_dense()?
        },
        factors: init_factors(&dims, &opts.ranks, opts.seed),
    };

    let mut iterations = Vec::with_capacity(opts.max_iters);
    let mut prev_err = f64::INFINITY;
    let mut converged = false;

    // NCG working set, allocated once and reused every iteration — the
    // parameter-vector analogue of the engine's per-thread scratch arenas.
    let mut grad = ParamsDelta::zeros_like(&params);
    let mut prev_grad = ParamsDelta::zeros_like(&params);
    let mut neg = ParamsDelta::zeros_like(&params);
    let mut diff = ParamsDelta::zeros_like(&params);
    let mut dir = ParamsDelta::zeros_like(&params);
    let mut trial = params.clone();
    let mut have_prev = false;

    let mut f_cur = objective(x, &params)?;
    for iter in 0..opts.max_iters {
        let t_iter = Instant::now();
        gradient_into(x, &params, &mut grad)?;
        // neg_grad used as the base direction.
        neg.neg_from(&grad);
        // Polak–Ribière β with restart to steepest descent when needed;
        // `dir` still holds the previous direction.
        if have_prev {
            diff.sub_from(&grad, &prev_grad);
            let denom = prev_grad.dot(&prev_grad);
            let beta = if denom > 0.0 {
                (grad.dot(&diff) / denom).max(0.0)
            } else {
                0.0
            };
            dir.scale_add(beta, &neg);
        } else {
            dir.copy_from(&neg);
        }
        // Ensure descent; restart otherwise.
        let g_dot_d = grad.dot(&dir);
        if g_dot_d >= 0.0 {
            dir.copy_from(&neg);
        }
        let g_dot_d = grad.dot(&dir).min(-f64::EPSILON);

        // Backtracking line search (Armijo) on a single reused trial point.
        let mut t = 1.0;
        let c1 = 1e-4;
        let mut accepted = false;
        for _ in 0..40 {
            trial.copy_from(&params);
            trial.axpy(t, &dir);
            let f_trial = objective(x, &trial)?;
            if f_trial <= f_cur + c1 * t * g_dot_d {
                std::mem::swap(&mut params, &mut trial);
                f_cur = f_trial;
                accepted = true;
                break;
            }
            t *= 0.5;
        }
        if !accepted {
            // Stuck (numerically flat): stop early, report convergence.
            converged = true;
            iterations.push(IterStats {
                iter,
                reconstruction_error: (2.0 * f_cur).sqrt(),
                seconds: t_iter.elapsed().as_secs_f64(),
                core_nnz: params.core.len(),
            });
            break;
        }

        let err = (2.0 * f_cur).sqrt();
        iterations.push(IterStats {
            iter,
            reconstruction_error: err,
            seconds: t_iter.elapsed().as_secs_f64(),
            core_nnz: params.core.len(),
        });
        if err.is_finite()
            && prev_err.is_finite()
            && (prev_err - err).abs() <= opts.tol * prev_err.max(f64::EPSILON)
        {
            converged = true;
            break;
        }
        prev_err = err;
        prev_grad.copy_from(&grad);
        have_prev = true;
    }

    let core = CoreTensor::from_dense(&params.core, 0.0)?;
    let final_error = observed_sse(x, &params.factors, &core, opts.threads).sqrt();
    Ok(FitResult {
        decomposition: TuckerDecomposition {
            factors: params.factors,
            core,
        },
        stats: FitStats {
            iterations,
            converged,
            total_seconds: t0.elapsed().as_secs_f64(),
            peak_intermediate_bytes: opts.budget.peak(),
            peak_spilled_bytes: 0,
            final_error,
            bytes_sent: 0,
            bytes_received: 0,
            io_read_bytes: 0,
            io_write_bytes: 0,
            prefetch_engaged: false,
        },
    })
}

/// Dense reconstruction `X̂ = G ×₁ A⁽¹⁾ ⋯ ×_N A⁽ᴺ⁾` — the expensive chain
/// that dominates wOpt's runtime (Table III's `Σ Iᴺ⁻ᵏJᵏ` term).
fn reconstruct_dense(p: &Params) -> Result<DenseTensor> {
    let mut t = p.core.clone();
    for (n, a) in p.factors.iter().enumerate() {
        t = t.mode_product(n, a)?;
    }
    Ok(t)
}

/// `f(θ) = ½ Σ_{α∈Ω} (X̂_α − X_α)²`.
fn objective(x: &SparseTensor, p: &Params) -> Result<f64> {
    let xhat = reconstruct_dense(p)?;
    let strides = row_major_strides(x.dims());
    let mut f = 0.0;
    for (idx, v) in x.iter() {
        let d = xhat.as_slice()[linearize(idx, &strides)] - v;
        f += d * d;
    }
    Ok(0.5 * f)
}

/// Analytic gradient through the dense intermediates:
/// `∇G = E ×ₙ A⁽ⁿ⁾ᵀ (all n)`, `∇A⁽ⁿ⁾ = Σ_cells E · Tₙ` with
/// `Tₙ = G ×_{k≠n} A⁽ᵏ⁾` materialized per mode.
///
/// Writes into a caller-provided `out` so the parameter-sized buffers are
/// reused across NCG iterations; only the dense tensor intermediates (the
/// `Σ Iᴺ⁻ᵏJᵏ` chain that *is* wOpt's documented cost) are transient.
fn gradient_into(x: &SparseTensor, p: &Params, out: &mut ParamsDelta) -> Result<()> {
    let order = p.factors.len();
    let xhat = reconstruct_dense(p)?;
    let strides = row_major_strides(xhat.dims());

    // Masked residual E (dense; zero at unobserved cells).
    let mut e = DenseTensor::zeros(xhat.dims().to_vec())?;
    for (idx, v) in x.iter() {
        let lin = linearize(idx, &strides);
        e.as_mut_slice()[lin] = xhat.as_slice()[lin] - v;
    }

    // ∇G = E ×₁ A⁽¹⁾ᵀ ⋯ ×_N A⁽ᴺ⁾ᵀ.
    let mut gcore = e.clone();
    for (n, a) in p.factors.iter().enumerate() {
        gcore = gcore.mode_product(n, &a.transpose())?;
    }
    out.core.copy_from_slice(gcore.as_slice());

    // ∇A⁽ⁿ⁾: iterate the dense residual against Tₙ.
    let mut idx = vec![0usize; order];
    for n in 0..order {
        let mut tn = p.core.clone();
        for (k, a) in p.factors.iter().enumerate() {
            if k == n {
                continue;
            }
            tn = tn.mode_product(k, a)?;
        }
        // Tₙ has dims like X except mode n has size Jₙ.
        let tn_strides = row_major_strides(tn.dims()).to_vec();
        let j_n = p.factors[n].cols();
        let ga = &mut out.factors[n];
        ga.fill(0.0);
        for (lin, &ev) in e.as_slice().iter().enumerate() {
            if ev == 0.0 {
                continue;
            }
            delinearize(lin, e.dims(), &mut idx);
            let i_n = idx[n];
            for j in 0..j_n {
                idx[n] = j;
                let t_lin = linearize(&idx, &tn_strides);
                ga[i_n * j_n + j] += ev * tn.as_slice()[t_lin];
            }
            idx[n] = i_n;
        }
    }
    Ok(())
}

/// Allocating convenience wrapper over [`gradient_into`] (tests,
/// finite-difference checks).
#[cfg(test)]
fn gradient(x: &SparseTensor, p: &Params) -> Result<ParamsDelta> {
    let mut out = ParamsDelta::zeros_like(p);
    gradient_into(x, p, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptucker_datagen::planted_lowrank;
    use ptucker_memtrack::MemoryBudget;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn planted() -> SparseTensor {
        let mut rng = StdRng::seed_from_u64(31);
        planted_lowrank(&[8, 7, 6], &[2, 2, 2], 180, 0.01, &mut rng).tensor
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let x = planted();
        let mut rng = StdRng::seed_from_u64(77);
        let params = Params {
            core: CoreTensor::random_dense(vec![2, 2, 2], &mut rng)
                .unwrap()
                .to_dense()
                .unwrap(),
            factors: init_factors(&[8, 7, 6], &[2, 2, 2], 5),
        };
        let g = gradient(&x, &params).unwrap();
        let h = 1e-6;
        // Check a few core coordinates.
        for b in [0usize, 3, 7] {
            let mut plus = params.clone();
            plus.core.as_mut_slice()[b] += h;
            let mut minus = params.clone();
            minus.core.as_mut_slice()[b] -= h;
            let fd = (objective(&x, &plus).unwrap() - objective(&x, &minus).unwrap()) / (2.0 * h);
            assert!(
                (g.core[b] - fd).abs() < 1e-4 * fd.abs().max(1.0),
                "core[{b}]: {} vs fd {fd}",
                g.core[b]
            );
        }
        // Check a few factor coordinates.
        for (n, p) in [(0usize, 0usize), (1, 5), (2, 11)] {
            let mut plus = params.clone();
            plus.factors[n].as_mut_slice()[p] += h;
            let mut minus = params.clone();
            minus.factors[n].as_mut_slice()[p] -= h;
            let fd = (objective(&x, &plus).unwrap() - objective(&x, &minus).unwrap()) / (2.0 * h);
            assert!(
                (g.factors[n][p] - fd).abs() < 1e-4 * fd.abs().max(1.0),
                "A({n})[{p}]: {} vs fd {fd}",
                g.factors[n][p]
            );
        }
    }

    #[test]
    fn error_decreases_over_ncg_steps() {
        let x = planted();
        let opts = BaselineOptions::new(vec![2, 2, 2])
            .max_iters(15)
            .tol(0.0)
            .seed(3);
        let r = tucker_wopt(&x, &opts).unwrap();
        let errs: Vec<f64> = r
            .stats
            .iterations
            .iter()
            .map(|s| s.reconstruction_error)
            .collect();
        assert!(errs.len() >= 2);
        for w in errs.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "NCG error increased: {w:?}");
        }
        // Armijo sufficient decrease should make real progress.
        assert!(*errs.last().unwrap() < 0.8 * errs[0]);
    }

    #[test]
    fn observed_only_semantics_beat_zero_imputation() {
        // On planted data with a train/test split, wOpt (observed-only)
        // must predict held-out entries far better than zero-imputing CSF.
        let x = planted();
        let mut rng = StdRng::seed_from_u64(11);
        let split = ptucker_tensor::TrainTestSplit::new(&x, 0.15, &mut rng).unwrap();
        let opts = BaselineOptions::new(vec![2, 2, 2]).max_iters(40).seed(7);
        let wopt = tucker_wopt(&split.train, &opts).unwrap();
        let csf = crate::csf::tucker_csf(&split.train, &opts).unwrap();
        let rmse_wopt = wopt
            .decomposition
            .test_rmse(&split.test, 2, ptucker::Schedule::Static);
        let rmse_csf = csf
            .decomposition
            .test_rmse(&split.test, 2, ptucker::Schedule::Static);
        assert!(
            rmse_wopt < rmse_csf,
            "wopt rmse {rmse_wopt} vs csf rmse {rmse_csf}"
        );
    }

    #[test]
    fn oom_reproduced_on_budget() {
        let x = planted();
        let opts = BaselineOptions::new(vec![2, 2, 2]).budget(MemoryBudget::new(1024));
        assert!(matches!(
            tucker_wopt(&x, &opts).unwrap_err(),
            PtuckerError::OutOfMemory(_)
        ));
    }

    #[test]
    fn oom_on_overflowing_grid() {
        // Dims whose cell-count product overflows usize (3e6³ ≈ 2.7e19).
        let x = SparseTensor::new(
            vec![3_000_000, 3_000_000, 3_000_000],
            vec![(vec![0, 0, 0], 1.0)],
        )
        .unwrap();
        let opts = BaselineOptions::new(vec![1, 1, 1]);
        assert!(matches!(
            tucker_wopt(&x, &opts).unwrap_err(),
            PtuckerError::OutOfMemory(_)
        ));
    }
}
