use ptucker::{PtuckerError, Result};
use ptucker_linalg::Matrix;
use ptucker_memtrack::MemoryBudget;
use ptucker_sched::{parallel_reduce, Schedule};
use ptucker_tensor::{CoreTensor, SparseTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shared configuration for the baseline methods (ranks, iteration budget,
/// threading, memory budget). Mirrors the relevant subset of
/// [`ptucker::FitOptions`] so the harnesses can configure every method the
/// same way.
#[derive(Debug, Clone)]
pub struct BaselineOptions {
    /// Core dimensionalities `J₁ … J_N`.
    pub ranks: Vec<usize>,
    /// Maximum outer iterations (paper default 20).
    pub max_iters: usize,
    /// Relative-change convergence tolerance on the reconstruction error.
    pub tol: f64,
    /// Worker threads for the parallelizable parts.
    pub threads: usize,
    /// RNG seed for initialization.
    pub seed: u64,
    /// Intermediate-data budget; exceeding it returns the paper's O.O.M.
    pub budget: MemoryBudget,
}

impl BaselineOptions {
    /// Creates options with the paper's defaults.
    pub fn new(ranks: Vec<usize>) -> Self {
        BaselineOptions {
            ranks,
            max_iters: 20,
            tol: 1e-4,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            seed: 0,
            budget: MemoryBudget::default(),
        }
    }

    /// Sets the maximum iteration count.
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Sets the convergence tolerance.
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the intermediate-data budget.
    pub fn budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Validates the options against a tensor shape.
    ///
    /// # Errors
    /// [`PtuckerError::InvalidConfig`] for arity/rank violations.
    pub fn validate_for(&self, dims: &[usize]) -> Result<()> {
        if self.ranks.is_empty() || self.ranks.contains(&0) {
            return Err(PtuckerError::InvalidConfig(
                "ranks must be non-empty and positive".into(),
            ));
        }
        if self.ranks.len() != dims.len() {
            return Err(PtuckerError::InvalidConfig(format!(
                "ranks have order {} but the tensor has order {}",
                self.ranks.len(),
                dims.len()
            )));
        }
        for (n, (&j, &i)) in self.ranks.iter().zip(dims).enumerate() {
            if j > i {
                return Err(PtuckerError::InvalidConfig(format!(
                    "rank J_{n} = {j} exceeds dimensionality I_{n} = {i}"
                )));
            }
        }
        if self.max_iters == 0 {
            return Err(PtuckerError::InvalidConfig("max_iters must be >= 1".into()));
        }
        Ok(())
    }
}

/// Random factor initialization in `[0, 1)`, identical to P-Tucker's, so the
/// methods start from comparable states under the same seed.
pub(crate) fn init_factors(dims: &[usize], ranks: &[usize], seed: u64) -> Vec<Matrix> {
    let mut rng = StdRng::seed_from_u64(seed);
    dims.iter()
        .zip(ranks)
        .map(|(&i_n, &j_n)| {
            let data: Vec<f64> = (0..i_n * j_n).map(|_| rng.gen::<f64>()).collect();
            Matrix::from_vec(i_n, j_n, data).expect("length matches by construction")
        })
        .collect()
}

/// The HOOI core update `G = X ×₁ A⁽¹⁾ᵀ ⋯ ×_N A⁽ᴺ⁾ᵀ`, evaluated over the
/// nonzeros only (exact, because HOOI treats missing cells as zeros):
/// `G_β = Σ_{α∈Ω} X_α Πₙ a⁽ⁿ⁾(iₙ, βₙ)`.
pub(crate) fn hooi_core(
    x: &SparseTensor,
    factors: &[Matrix],
    ranks: &[usize],
    threads: usize,
) -> CoreTensor {
    let core_shape =
        CoreTensor::dense_from_fn(ranks.to_vec(), |_| 0.0).expect("ranks validated by the caller");
    let g = core_shape.nnz();
    let order = x.order();
    let core_idx = core_shape.flat_indices().to_vec();
    let vals = parallel_reduce(
        x.nnz(),
        threads,
        Schedule::Static,
        || vec![0.0f64; g],
        |mut acc, e| {
            let idx = x.index(e);
            let xv = x.value(e);
            for (b, slot) in acc.iter_mut().enumerate() {
                let beta = &core_idx[b * order..(b + 1) * order];
                let mut w = xv;
                for (k, factor) in factors.iter().enumerate() {
                    w *= factor[(idx[k], beta[k])];
                    if w == 0.0 {
                        break;
                    }
                }
                *slot += w;
            }
            acc
        },
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            a
        },
    );
    let mut core = core_shape;
    core.values_mut().copy_from_slice(&vals);
    core
}

/// Observed-entry sum of squared residuals for borrowed factors/core —
/// the Eq. 5 metric shared by every baseline's iteration log.
pub(crate) fn observed_sse(
    x: &SparseTensor,
    factors: &[Matrix],
    core: &CoreTensor,
    threads: usize,
) -> f64 {
    let order = x.order();
    let core_idx = core.flat_indices();
    let core_vals = core.values();
    parallel_reduce(
        x.nnz(),
        threads,
        Schedule::Static,
        || 0.0f64,
        |acc, e| {
            let idx = x.index(e);
            let mut rec = 0.0;
            for (b, &gv) in core_vals.iter().enumerate() {
                let beta = &core_idx[b * order..(b + 1) * order];
                let mut w = gv;
                for (k, factor) in factors.iter().enumerate() {
                    w *= factor[(idx[k], beta[k])];
                    if w == 0.0 {
                        break;
                    }
                }
                rec += w;
            }
            let d = x.value(e) - rec;
            acc + d * d
        },
        |a, b| a + b,
    )
}

/// The shared HOOI outer loop used by the sparse baselines (Tucker-CSF and
/// S-HOT): per mode, `update_mode` replaces `A⁽ⁿ⁾` with the `Jₙ` leading
/// left singular vectors of the (implicit or explicit) TTMc output; the
/// core is then the zero-imputed projection and the error is measured on
/// the observed entries.
pub(crate) fn run_hooi_loop<F>(
    x: &SparseTensor,
    opts: &BaselineOptions,
    mut update_mode: F,
) -> Result<ptucker::FitResult>
where
    F: FnMut(&mut [Matrix], usize) -> Result<()>,
{
    use std::time::Instant;
    opts.validate_for(x.dims())?;
    if x.order() < 2 {
        return Err(PtuckerError::InvalidConfig(
            "HOOI-style methods require order >= 2".into(),
        ));
    }
    let t0 = Instant::now();
    opts.budget.reset_peak();
    let order = x.order();
    let mut factors = init_factors(x.dims(), &opts.ranks, opts.seed);
    for f in factors.iter_mut() {
        *f = f.qr()?.into_parts().0;
    }
    let mut iterations = Vec::with_capacity(opts.max_iters);
    let mut prev_err = f64::INFINITY;
    let mut converged = false;
    for iter in 0..opts.max_iters {
        let t_iter = Instant::now();
        for n in 0..order {
            update_mode(&mut factors, n)?;
        }
        let core = hooi_core(x, &factors, &opts.ranks, opts.threads);
        let err = observed_sse(x, &factors, &core, opts.threads).sqrt();
        iterations.push(ptucker::IterStats {
            iter,
            reconstruction_error: err,
            seconds: t_iter.elapsed().as_secs_f64(),
            core_nnz: core.nnz(),
        });
        if err.is_finite()
            && prev_err.is_finite()
            && (prev_err - err).abs() <= opts.tol * prev_err.max(f64::EPSILON)
        {
            converged = true;
            break;
        }
        prev_err = err;
    }
    let core = hooi_core(x, &factors, &opts.ranks, opts.threads);
    let final_error = observed_sse(x, &factors, &core, opts.threads).sqrt();
    Ok(ptucker::FitResult {
        decomposition: ptucker::TuckerDecomposition { factors, core },
        stats: ptucker::FitStats {
            iterations,
            converged,
            total_seconds: t0.elapsed().as_secs_f64(),
            peak_intermediate_bytes: opts.budget.peak(),
            peak_spilled_bytes: 0,
            final_error,
            bytes_sent: 0,
            bytes_received: 0,
            io_read_bytes: 0,
            io_write_bytes: 0,
            prefetch_engaged: false,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_validation() {
        let o = BaselineOptions::new(vec![2, 2]);
        assert!(o.validate_for(&[5, 5]).is_ok());
        assert!(o.validate_for(&[5]).is_err());
        assert!(o.validate_for(&[1, 5]).is_err());
        assert!(BaselineOptions::new(vec![]).validate_for(&[]).is_err());
        assert!(BaselineOptions::new(vec![2, 2])
            .max_iters(0)
            .validate_for(&[5, 5])
            .is_err());
    }

    #[test]
    fn hooi_core_matches_bruteforce() {
        let x = SparseTensor::new(
            vec![3, 2],
            vec![(vec![0, 0], 2.0), (vec![1, 1], -1.0), (vec![2, 0], 0.5)],
        )
        .unwrap();
        let factors = init_factors(&[3, 2], &[2, 2], 7);
        let core = hooi_core(&x, &factors, &[2, 2], 2);
        for (beta, got) in core.iter() {
            let mut want = 0.0;
            for (idx, xv) in x.iter() {
                want += xv * factors[0][(idx[0], beta[0])] * factors[1][(idx[1], beta[1])];
            }
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn observed_sse_zero_for_exact_model() {
        let factors = init_factors(&[4, 3], &[2, 2], 3);
        let core =
            CoreTensor::dense_from_fn(vec![2, 2], |i| (i[0] + 2 * i[1]) as f64 * 0.3).unwrap();
        // Build entries whose values are the exact reconstruction.
        let mut entries = Vec::new();
        for i0 in 0..4 {
            for i1 in 0..3 {
                let mut rec = 0.0;
                for (beta, gv) in core.iter() {
                    rec += gv * factors[0][(i0, beta[0])] * factors[1][(i1, beta[1])];
                }
                entries.push((vec![i0, i1], rec));
            }
        }
        let x = SparseTensor::new(vec![4, 3], entries).unwrap();
        assert!(observed_sse(&x, &factors, &core, 2).abs() < 1e-18);
    }
}
