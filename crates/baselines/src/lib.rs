//! Competitor Tucker-factorization methods, re-implemented from their
//! published algorithms.
//!
//! The P-Tucker paper (Section IV) compares against three state-of-the-art
//! methods plus the classic dense algorithm; all four are built here from
//! scratch with the complexity profiles of the paper's Table III:
//!
//! | Method | Source | Time (per iter) | Intermediate memory |
//! |---|---|---|---|
//! | [`tucker_als`] (HOOI) | De Lathauwer et al. | dense mode-product chain | `O(Iᴺ)` dense tensors |
//! | [`tucker_wopt`] | Filipović & Jukić 2015 | `O(N Σ Iᴺ⁻ᵏJᵏ)` | `O(Iᴺ⁻¹J)` dense intermediates |
//! | [`tucker_csf`] | Smith & Karypis 2017 | `O(N Jᴺ⁻¹(‖Ω‖+J²⁽ᴺ⁻¹⁾))` | `O(I·Jᴺ⁻¹)` TTMc output |
//! | [`s_hot`] | Oh et al. WSDM 2017 | `O(N Jᴺ + N‖Ω‖Jᴺ)` | `O(Jᴺ⁻¹)`-scale on-the-fly buffers |
//!
//! Two semantic camps matter for the accuracy experiments (Fig. 11):
//!
//! * **Zero-imputing** methods ([`tucker_als`], [`tucker_csf`], [`s_hot`])
//!   minimize the loss over *all* cells, treating missing entries as zeros —
//!   fast structures, poor missing-value prediction.
//! * **Observed-only** methods ([`tucker_wopt`], and P-Tucker itself)
//!   minimize only over `Ω` — accurate, but wOpt's dense gradients explode
//!   in memory (the paper's repeated O.O.M. columns), which this
//!   implementation reproduces through the shared
//!   [`ptucker_memtrack::MemoryBudget`].
//!
//! All methods return the same [`ptucker::FitResult`] as P-Tucker, so the
//! benchmark harnesses evaluate every algorithm identically.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)]
#![allow(clippy::type_complexity)]

mod common;
mod csf;
mod hooi;
mod shot;
mod wopt;

pub use common::BaselineOptions;
pub use csf::{tucker_csf, CsfTensor};
pub use hooi::tucker_als;
pub use shot::s_hot;
pub use wopt::tucker_wopt;
