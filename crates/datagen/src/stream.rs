//! Streaming generators and converters: disk-resident COO sources built
//! without ever materializing the entry set in memory.
//!
//! The in-memory generators ([`crate::uniform_sparse`] and friends) return
//! a [`SparseTensor`] — `O(|Ω|)` resident words by construction, which
//! caps them at tensors that fit in RAM. These writers are the
//! disk-to-disk pipeline's front end: they emit entries one at a time into
//! a [`CooScratchWriter`] (whose flush buffer is the only entry storage,
//! a few KiB), so generating a source **larger than the memory budget**
//! holds `O(Σₙ Iₙ)` state at most — the Zipf samplers' CDF tables — and
//! the result feeds `PTucker::fit_scratch` directly.
//!
//! [`tsv_to_scratch`] is the matching ingest for the authors' 1-based
//! whitespace TSV datasets: two sequential passes (shape scan, then entry
//! stream) with one line buffer, never a resident entry array.

use ptucker_memtrack::MemoryBudget;
use ptucker_tensor::{
    CooScratch, CooScratchWriter, Result, SparseTensor, StoragePrecision, TensorError,
};
use rand::Rng;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use crate::Zipf;

/// Streams `nnz` uniformly sampled entries (cells uniform over the grid,
/// values uniform in `[0, 1)`) straight into a COO scratch file.
///
/// Cells are sampled **directly** — no deduplication table, because that
/// table would be the `O(|Ω|)` memory this writer exists to avoid. At the
/// low densities that need a disk-resident source the expected collision
/// fraction is ≪ 1%, and a repeated cell is just a repeated observation to
/// the solver. Use [`crate::uniform_sparse`] when exact distinctness
/// matters and the tensor fits in memory.
///
/// # Errors
/// [`TensorError::Io`] on scratch-file failures,
/// [`TensorError::InvalidDims`] for empty/zero/overflowing `dims`.
pub fn stream_uniform_to_scratch<R: Rng + ?Sized>(
    dims: &[usize],
    nnz: usize,
    rng: &mut R,
    budget: &MemoryBudget,
) -> Result<CooScratch> {
    let mut w = CooScratchWriter::create(dims.to_vec(), budget)?;
    let mut idx = vec![0usize; dims.len()];
    for _ in 0..nnz {
        for (slot, &d) in idx.iter_mut().zip(dims) {
            *slot = rng.gen_range(0..d);
        }
        let v: f64 = rng.gen();
        w.push(&idx, v)?;
    }
    w.finish()
}

/// Streams `nnz` Zipf-skewed entries into a COO scratch file: mode-`k`
/// coordinates follow `P(i) ∝ 1/(i+1)^s` independently per mode — the
/// skewed slice-size profile of real rating data (a few heavy users/items,
/// a long light tail) at any scale — with values uniform in `[0, 1)`.
/// `s = 0` degenerates to [`stream_uniform_to_scratch`].
///
/// Resident state is the per-mode CDF tables (`O(Σₙ Iₙ)` doubles) plus the
/// writer's bounded flush buffer; entries are never held.
///
/// # Errors
/// As for [`stream_uniform_to_scratch`].
///
/// # Panics
/// Panics if `s` is negative or non-finite (see [`Zipf::new`]).
pub fn stream_zipf_to_scratch<R: Rng + ?Sized>(
    dims: &[usize],
    nnz: usize,
    s: f64,
    rng: &mut R,
    budget: &MemoryBudget,
) -> Result<CooScratch> {
    let samplers: Vec<Zipf> = dims.iter().map(|&d| Zipf::new(d.max(1), s)).collect();
    let mut w = CooScratchWriter::create(dims.to_vec(), budget)?;
    let mut idx = vec![0usize; dims.len()];
    for _ in 0..nnz {
        for (slot, z) in idx.iter_mut().zip(&samplers) {
            *slot = z.sample(rng);
        }
        let v: f64 = rng.gen();
        w.push(&idx, v)?;
    }
    w.finish()
}

/// Converts a 1-based whitespace TSV dataset (the format of
/// [`crate::read_dataset`] / [`ptucker_tensor::read_tsv`]) into a
/// disk-resident COO scratch file without building a [`SparseTensor`]:
/// pass 1 scans the file for the order and per-mode maxima, pass 2 streams
/// each parsed entry into the writer. One line buffer is the only
/// per-entry state either pass holds.
///
/// `precision` selects value parsing exactly as [`crate::read_dataset`]
/// does: `F32` parses each value as `f32` and widens, so a downstream
/// `StoragePrecision::F32` fit re-quantizes nothing.
///
/// # Errors
/// [`TensorError::Parse`] with a 1-based line number for malformed lines
/// (same diagnostics as [`ptucker_tensor::read_tsv`]),
/// [`TensorError::Io`] for filesystem problems.
pub fn tsv_to_scratch<P: AsRef<Path>>(
    path: P,
    precision: StoragePrecision,
    budget: &MemoryBudget,
) -> Result<CooScratch> {
    let path = path.as_ref();
    // Pass 1 — shape: order from the first data line, dims as per-mode
    // 1-based maxima (the TSV convention: the grid is as large as its
    // largest observed coordinate).
    let mut dims: Vec<usize> = Vec::new();
    scan_tsv(path, |line_no, fields| {
        parse_entry(line_no, fields, precision, |idx, _v| {
            if dims.is_empty() {
                dims = vec![0; idx.len()];
            }
            for (d, &i) in dims.iter_mut().zip(idx) {
                *d = (*d).max(i + 1);
            }
            Ok(())
        })
    })?;
    if dims.is_empty() {
        return Err(TensorError::Parse {
            line: 0,
            message: "file contains no data lines".into(),
        });
    }
    // Pass 2 — entries, in file order.
    let mut w = CooScratchWriter::create(dims, budget)?;
    scan_tsv(path, |line_no, fields| {
        parse_entry(line_no, fields, precision, |idx, v| w.push(idx, v))
    })?;
    w.finish()
}

/// Drives `on_line` over every data line (blank and `#` lines skipped),
/// reusing one line buffer.
fn scan_tsv<F>(path: &Path, mut on_line: F) -> Result<()>
where
    F: FnMut(usize, &[&str]) -> Result<()>,
{
    let mut reader = BufReader::new(File::open(path)?);
    let mut line = String::new();
    let mut line_no = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        on_line(line_no, &fields)?;
    }
}

/// Parses one `i₁ … i_N value` line (1-based indices) and hands the
/// zero-based multi-index and value to `emit`. Shared by both passes so
/// their diagnostics (and f32 semantics) cannot drift.
fn parse_entry<F>(
    line_no: usize,
    fields: &[&str],
    precision: StoragePrecision,
    mut emit: F,
) -> Result<()>
where
    F: FnMut(&[usize], f64) -> Result<()>,
{
    if fields.len() < 2 {
        return Err(TensorError::Parse {
            line: line_no,
            message: "expected at least one index and a value".into(),
        });
    }
    let n = fields.len() - 1;
    let mut idx = [0usize; 16];
    if n > idx.len() {
        return Err(TensorError::Parse {
            line: line_no,
            message: format!("order {n} exceeds the supported maximum of {}", idx.len()),
        });
    }
    for (k, f) in fields[..n].iter().enumerate() {
        let one_based: usize = f.parse().map_err(|_| TensorError::Parse {
            line: line_no,
            message: format!("bad index '{f}' in mode {k}"),
        })?;
        if one_based == 0 {
            return Err(TensorError::Parse {
                line: line_no,
                message: format!("index in mode {k} is 0; the format is 1-based"),
            });
        }
        idx[k] = one_based - 1;
    }
    let raw = fields[n];
    let v: f64 = match precision {
        StoragePrecision::F32 => {
            let v32: f32 = raw.parse().map_err(|_| TensorError::Parse {
                line: line_no,
                message: format!("bad value '{raw}'"),
            })?;
            v32 as f64
        }
        StoragePrecision::F64 => raw.parse().map_err(|_| TensorError::Parse {
            line: line_no,
            message: format!("bad value '{raw}'"),
        })?,
    };
    emit(&idx[..n], v)
}

/// Collects a scratch source back into a resident [`SparseTensor`] —
/// test/tooling convenience, deliberately `O(|Ω|)`.
///
/// # Errors
/// [`TensorError::Io`] on read failures, plus tensor-construction
/// validation errors.
pub fn scratch_to_tensor(src: &CooScratch) -> Result<SparseTensor> {
    let order = src.order();
    let mut indices = Vec::with_capacity(src.nnz() * order);
    let mut values = Vec::with_capacity(src.nnz());
    let mut cur = src.segments(8 << 10);
    while let Some(seg) = cur.next_segment()? {
        for i in 0..seg.len() {
            indices.extend(seg.index(i).iter().map(|&k| k as usize));
            values.push(seg.value(i));
        }
    }
    SparseTensor::from_flat(src.dims().to_vec(), indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ptucker_datagen_stream");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn uniform_stream_shape_and_range() {
        let budget = MemoryBudget::new(usize::MAX);
        let mut rng = StdRng::seed_from_u64(11);
        let src = stream_uniform_to_scratch(&[9, 7, 5], 400, &mut rng, &budget).unwrap();
        assert_eq!(src.dims(), &[9, 7, 5]);
        assert_eq!(src.nnz(), 400);
        let x = scratch_to_tensor(&src).unwrap();
        assert!(x.values().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn zipf_stream_is_skewed_and_deterministic() {
        let budget = MemoryBudget::new(usize::MAX);
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            stream_zipf_to_scratch(&[64, 64], 20_000, 1.2, &mut rng, &budget).unwrap()
        };
        let a = scratch_to_tensor(&gen(3)).unwrap();
        let b = scratch_to_tensor(&gen(3)).unwrap();
        assert_eq!(a.flat_indices(), b.flat_indices());
        for (va, vb) in a.values().iter().zip(b.values()) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
        // Head slice of mode 0 much heavier than a mid slice.
        let count = |row: usize| (0..a.nnz()).filter(|&e| a.index(e)[0] == row).count();
        assert!(count(0) > 5 * count(32).max(1));
    }

    #[test]
    fn tsv_converter_matches_resident_reader_bitwise() {
        let budget = MemoryBudget::new(usize::MAX);
        let mut rng = StdRng::seed_from_u64(23);
        let x = crate::uniform_sparse(&[8, 6, 4], 120, &mut rng);
        let path = tmp("roundtrip.tsv");
        for precision in [StoragePrecision::F64, StoragePrecision::F32] {
            crate::write_dataset(&path, &x, precision).unwrap();
            let resident = crate::read_dataset(&path, precision).unwrap();
            let src = tsv_to_scratch(&path, precision, &budget).unwrap();
            assert_eq!(src.dims(), resident.dims());
            let streamed = scratch_to_tensor(&src).unwrap();
            assert_eq!(streamed.flat_indices(), resident.flat_indices());
            for (a, b) in streamed.values().iter().zip(resident.values()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{precision:?}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tsv_converter_rejects_malformed_lines() {
        let budget = MemoryBudget::new(usize::MAX);
        let path = tmp("bad.tsv");
        std::fs::write(&path, "1 1 0.5\n0 2 1.0\n").unwrap();
        let err = tsv_to_scratch(&path, StoragePrecision::F64, &budget).unwrap_err();
        assert!(matches!(err, TensorError::Parse { line: 2, .. }), "{err:?}");
        std::fs::write(&path, "# only comments\n\n").unwrap();
        let err = tsv_to_scratch(&path, StoragePrecision::F64, &budget).unwrap_err();
        assert!(matches!(err, TensorError::Parse { line: 0, .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streams_are_budget_tracked() {
        let budget = MemoryBudget::new(1);
        let mut rng = StdRng::seed_from_u64(5);
        let src = stream_uniform_to_scratch(&[16, 16], 5_000, &mut rng, &budget).unwrap();
        // The entries live on the spill meter, not in resident memory.
        assert!(budget.spilled_in_use() >= src.bytes() as usize);
        assert_eq!(src.nnz(), 5_000);
    }
}
