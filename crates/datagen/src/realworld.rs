//! Simulated stand-ins for the paper's four real-world datasets.
//!
//! The licensed originals (Yahoo-music, MovieLens, sea-wave video, Lena
//! image) are not redistributable offline, so each generator reproduces the
//! properties the experiments actually exercise:
//!
//! * the **order and mode shape** (e.g. 4-way `(user, movie, year, hour)`),
//! * values normalized to `[0, 1]`,
//! * **Zipf-skewed** user/item activity — the slice-size skew that makes
//!   dynamic scheduling matter (Section IV-D),
//! * latent **genre clusters** over the movie mode and planted
//!   `(year, hour)`/`(genre, year)` **relations**, so the discovery
//!   experiments of Section V (Tables V and VI) have a ground truth, and
//! * approximately low Tucker rank, so observed-entry methods achieve low
//!   test RMSE while zero-imputing methods do not (Figure 11).
//!
//! Every generator takes a `scale` in `(0, 1]` multiplying the large mode
//! dimensions and the entry count, so laptop-scale defaults and the paper's
//! full sizes share one code path.

use crate::Zipf;
use ptucker_tensor::SparseTensor;
use rand::Rng;
use std::collections::HashSet;

/// Number of planted genres in the simulated MovieLens data.
pub const NUM_GENRES: usize = 8;

/// Names for the planted genres (used when printing Table V analogues).
pub const GENRE_NAMES: [&str; NUM_GENRES] = [
    "Thriller",
    "Comedy",
    "Drama",
    "Action",
    "Romance",
    "Horror",
    "Sci-Fi",
    "Documentary",
];

/// Planted `(year, hour)` peaks: the relations Table VI's analogue should
/// rediscover, expressed as (year index offset from the last year, hour).
pub const PLANTED_YEAR_HOUR: [(usize, usize); 3] = [(0, 14), (1, 0), (2, 21)];

/// A simulated MovieLens tensor with its planted ground truth.
#[derive(Debug, Clone)]
pub struct MovieLensSim {
    /// `(user, movie, year, hour) → rating ∈ [0, 1]`.
    pub tensor: SparseTensor,
    /// Ground-truth genre id of every movie (cluster labels for Table V).
    pub movie_genre: Vec<usize>,
    /// Ground-truth preference cluster of every user.
    pub user_cluster: Vec<usize>,
}

fn round_dim(full: usize, scale: f64, min: usize) -> usize {
    ((full as f64 * scale).round() as usize).max(min)
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Simulates the 4-way MovieLens tensor `(user, movie, year, hour; rating)`.
///
/// Full size is `(138K, 27K, 21, 24)` with 20M observed ratings; `scale`
/// shrinks the user/movie modes and the rating count proportionally. Ratings
/// follow `0.15 + 0.6·affinity(user-cluster, genre) + 0.1·year-boost +
/// 0.1·hour-boost + noise`, clamped to `[0, 1]`:
///
/// * the affinity block structure makes the movie factor cluster by genre
///   (Table V's concept discovery),
/// * year/hour boosts peak at [`PLANTED_YEAR_HOUR`] and at genre-specific
///   hours (Table VI's relation discovery), and
/// * the Zipf exponents (users 1.1, movies 1.05) produce the slice-size skew
///   of real rating data.
pub fn movielens<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> MovieLensSim {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let users = round_dim(138_000, scale, 60);
    let movies = round_dim(27_000, scale, 40);
    let years = 21;
    let hours = 24;
    let nnz_target = round_dim(20_000_000, scale, 2_000);
    // Cannot observe more cells than exist.
    let grid = users as f64 * movies as f64 * years as f64 * hours as f64;
    let nnz_target = (nnz_target as f64).min(grid * 0.5) as usize;

    // Planted structure.
    let movie_genre: Vec<usize> = (0..movies).map(|_| rng.gen_range(0..NUM_GENRES)).collect();
    let user_cluster: Vec<usize> = (0..users).map(|_| rng.gen_range(0..NUM_GENRES)).collect();
    // Affinity: strong diagonal (users love "their" genre).
    let mut affinity = [[0.0f64; NUM_GENRES]; NUM_GENRES];
    for (c, row) in affinity.iter_mut().enumerate() {
        for (g, a) in row.iter_mut().enumerate() {
            *a = if c == g {
                0.85 + 0.15 * rng.gen::<f64>()
            } else {
                0.25 * rng.gen::<f64>()
            };
        }
    }
    // Genre-specific preferred hours (drama at 8am/4pm/… in the paper).
    let genre_hour: Vec<usize> = (0..NUM_GENRES).map(|_| rng.gen_range(0..hours)).collect();
    // Genre-specific favored year bands (comedy in 1997-99 / 2005-07).
    let genre_year: Vec<usize> = (0..NUM_GENRES).map(|_| rng.gen_range(0..years)).collect();

    let user_z = Zipf::new(users, 1.1);
    let movie_z = Zipf::new(movies, 1.05);

    let mut seen: HashSet<u128> = HashSet::with_capacity(nnz_target * 2);
    let mut indices = Vec::with_capacity(nnz_target * 4);
    let mut values = Vec::with_capacity(nnz_target);
    while values.len() < nnz_target {
        let u = user_z.sample(rng);
        let m = movie_z.sample(rng);
        // 30% of events land on a planted (year, hour) peak.
        let (y, h) = if rng.gen::<f64>() < 0.3 {
            let &(dy, hh) = &PLANTED_YEAR_HOUR[rng.gen_range(0..PLANTED_YEAR_HOUR.len())];
            (years - 1 - dy, hh)
        } else {
            (rng.gen_range(0..years), rng.gen_range(0..hours))
        };
        let lin = ((u as u128 * movies as u128 + m as u128) * years as u128 + y as u128)
            * hours as u128
            + h as u128;
        if !seen.insert(lin) {
            continue;
        }
        let g = movie_genre[m];
        let c = user_cluster[u];
        let year_boost = if y == genre_year[g] { 1.0 } else { 0.0 };
        let hour_boost = if h == genre_hour[g] { 1.0 } else { 0.0 };
        // Planted (year, hour) interactions carry a *value* boost as well as
        // the sampling peak: Tucker factorization models values, so the
        // relation-discovery experiment (Table VI) needs the interaction to
        // live in the ratings, not only in the observation density.
        let peak_boost = if PLANTED_YEAR_HOUR
            .iter()
            .any(|&(dy, hh)| y == years - 1 - dy && h == hh)
        {
            1.0
        } else {
            0.0
        };
        let rating = 0.1
            + 0.5 * affinity[c][g]
            + 0.08 * year_boost
            + 0.08 * hour_boost
            + 0.25 * peak_boost
            + 0.05 * gaussian(rng);
        indices.extend_from_slice(&[u, m, y, h]);
        values.push(rating.clamp(0.0, 1.0));
    }

    let tensor = SparseTensor::from_flat(vec![users, movies, years, hours], indices, values)
        .expect("indices in range by construction");
    MovieLensSim {
        tensor,
        movie_genre,
        user_cluster,
    }
}

/// Simulates the 4-way Yahoo-music tensor
/// `(user, music, year-month, hour; rating)`.
///
/// Full size is `(1M, 625K, 133, 24)` with 252M entries. Uses the same
/// latent-cluster rating model as [`movielens`] with 12 clusters; only the
/// tensor is returned (the paper's discovery section uses MovieLens).
pub fn yahoo_music<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> SparseTensor {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    const CLUSTERS: usize = 12;
    let users = round_dim(1_000_000, scale, 80);
    let items = round_dim(625_000, scale, 50);
    let months = 133;
    let hours = 24;
    let nnz_target = round_dim(252_000_000, scale, 3_000);
    let grid = users as f64 * items as f64 * months as f64 * hours as f64;
    let nnz_target = (nnz_target as f64).min(grid * 0.5) as usize;

    let item_cluster: Vec<usize> = (0..items).map(|_| rng.gen_range(0..CLUSTERS)).collect();
    let user_cluster: Vec<usize> = (0..users).map(|_| rng.gen_range(0..CLUSTERS)).collect();
    let mut affinity = vec![[0.0f64; CLUSTERS]; CLUSTERS];
    for (c, row) in affinity.iter_mut().enumerate() {
        for (g, a) in row.iter_mut().enumerate() {
            *a = if c == g {
                0.8 + 0.2 * rng.gen::<f64>()
            } else {
                0.3 * rng.gen::<f64>()
            };
        }
    }

    let user_z = Zipf::new(users, 1.15);
    let item_z = Zipf::new(items, 1.1);
    let mut seen: HashSet<u128> = HashSet::with_capacity(nnz_target * 2);
    let mut indices = Vec::with_capacity(nnz_target * 4);
    let mut values = Vec::with_capacity(nnz_target);
    while values.len() < nnz_target {
        let u = user_z.sample(rng);
        let i = item_z.sample(rng);
        let m = rng.gen_range(0..months);
        let h = rng.gen_range(0..hours);
        let lin = ((u as u128 * items as u128 + i as u128) * months as u128 + m as u128)
            * hours as u128
            + h as u128;
        if !seen.insert(lin) {
            continue;
        }
        let rating = 0.2 + 0.65 * affinity[user_cluster[u]][item_cluster[i]] + 0.06 * gaussian(rng);
        indices.extend_from_slice(&[u, i, m, h]);
        values.push(rating.clamp(0.0, 1.0));
    }
    SparseTensor::from_flat(vec![users, items, months, hours], indices, values)
        .expect("indices in range by construction")
}

/// Simulates the 4-way sea-wave video tensor `(height, width, channel,
/// frame)` of size `(112, 160, 3, 32)` with a 10% uniform cell sample
/// (160K entries at full scale), values from a travelling-wave intensity
/// field — smooth and approximately low-rank like real footage.
pub fn wave_video<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> SparseTensor {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let (h, w, c, f) = (112usize, 160usize, 3usize, 32usize);
    let grid = h * w * c * f;
    let nnz = ((grid as f64 * 0.10 * scale).round() as usize).clamp(500, grid);

    let mut seen: HashSet<u128> = HashSet::with_capacity(nnz * 2);
    let mut indices = Vec::with_capacity(nnz * 4);
    let mut values = Vec::with_capacity(nnz);
    let two_pi = 2.0 * std::f64::consts::PI;
    while values.len() < nnz {
        let y = rng.gen_range(0..h);
        let x = rng.gen_range(0..w);
        let ch = rng.gen_range(0..c);
        let t = rng.gen_range(0..f);
        let lin =
            ((y as u128 * w as u128 + x as u128) * c as u128 + ch as u128) * f as u128 + t as u128;
        if !seen.insert(lin) {
            continue;
        }
        // Travelling wave with per-channel phase plus a vertical gradient.
        let phase = ch as f64 * 0.7;
        let v = 0.5
            + 0.3 * (two_pi * (x as f64 / w as f64 + t as f64 / f as f64) + phase).sin()
            + 0.2 * (y as f64 / h as f64 - 0.5);
        indices.extend_from_slice(&[y, x, ch, t]);
        values.push(v.clamp(0.0, 1.0));
    }
    SparseTensor::from_flat(vec![h, w, c, f], indices, values)
        .expect("indices in range by construction")
}

/// Simulates the 3-way Lena image tensor `(height, width, channel)` of size
/// `(256, 256, 3)` with a 10% uniform cell sample (20K entries at full
/// scale), values from a smooth synthetic image (sum of Gaussian blobs and
/// a gradient, distinct per channel).
pub fn lena_image<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> SparseTensor {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let (h, w, c) = (256usize, 256usize, 3usize);
    let grid = h * w * c;
    let nnz = ((grid as f64 * 0.10 * scale).round() as usize).clamp(300, grid);

    // Fixed blob layout (part of the "image", not of the sampling noise).
    let blobs = [
        (0.3, 0.4, 0.15, 0.9),
        (0.7, 0.6, 0.2, 0.7),
        (0.5, 0.2, 0.1, 0.8),
    ];

    let mut seen: HashSet<u128> = HashSet::with_capacity(nnz * 2);
    let mut indices = Vec::with_capacity(nnz * 3);
    let mut values = Vec::with_capacity(nnz);
    while values.len() < nnz {
        let y = rng.gen_range(0..h);
        let x = rng.gen_range(0..w);
        let ch = rng.gen_range(0..c);
        let lin = (y as u128 * w as u128 + x as u128) * c as u128 + ch as u128;
        if !seen.insert(lin) {
            continue;
        }
        let (fy, fx) = (y as f64 / h as f64, x as f64 / w as f64);
        let mut v = 0.25 + 0.25 * fx + 0.1 * fy;
        for (k, &(by, bx, sigma, amp)) in blobs.iter().enumerate() {
            let d2 = (fy - by).powi(2) + (fx - bx).powi(2);
            let chan_gain = 1.0 - 0.25 * ((ch + k) % 3) as f64;
            v += amp * chan_gain * (-d2 / (2.0 * sigma * sigma)).exp() * 0.4;
        }
        indices.extend_from_slice(&[y, x, ch]);
        values.push(v.clamp(0.0, 1.0));
    }
    SparseTensor::from_flat(vec![h, w, c], indices, values)
        .expect("indices in range by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn movielens_shape_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let sim = movielens(0.002, &mut rng);
        let t = &sim.tensor;
        assert_eq!(t.order(), 4);
        assert_eq!(t.dims()[2], 21);
        assert_eq!(t.dims()[3], 24);
        assert_eq!(sim.movie_genre.len(), t.dims()[1]);
        assert_eq!(sim.user_cluster.len(), t.dims()[0]);
        let (lo, hi) = t.value_range().unwrap();
        assert!(lo >= 0.0 && hi <= 1.0);
        assert!(sim.movie_genre.iter().all(|&g| g < NUM_GENRES));
    }

    #[test]
    fn movielens_user_activity_is_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let sim = movielens(0.002, &mut rng);
        let t = &sim.tensor;
        let users = t.dims()[0];
        let mut sizes: Vec<usize> = (0..users).map(|u| t.slice_len(0, u)).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        // Top user must have far more ratings than the median user.
        let median = sizes[users / 2];
        assert!(
            sizes[0] > 5 * median.max(1),
            "top={} median={median}",
            sizes[0]
        );
    }

    #[test]
    fn movielens_planted_year_hour_peaks_present() {
        let mut rng = StdRng::seed_from_u64(3);
        let sim = movielens(0.002, &mut rng);
        let t = &sim.tensor;
        let years = t.dims()[2];
        // Count (year, hour) pairs.
        let mut counts = std::collections::HashMap::new();
        for (idx, _) in t.iter() {
            *counts.entry((idx[2], idx[3])).or_insert(0usize) += 1;
        }
        let avg = t.nnz() as f64 / (21.0 * 24.0);
        for &(dy, h) in &PLANTED_YEAR_HOUR {
            let c = counts.get(&(years - 1 - dy, h)).copied().unwrap_or(0);
            assert!(
                c as f64 > 3.0 * avg,
                "peak ({dy},{h}) count {c} vs avg {avg}"
            );
        }
    }

    #[test]
    fn yahoo_music_shape() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = yahoo_music(0.0002, &mut rng);
        assert_eq!(t.order(), 4);
        assert_eq!(t.dims()[2], 133);
        assert_eq!(t.dims()[3], 24);
        let (lo, hi) = t.value_range().unwrap();
        assert!(lo >= 0.0 && hi <= 1.0);
    }

    #[test]
    fn video_and_image_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = wave_video(0.05, &mut rng);
        assert_eq!(v.dims(), &[112, 160, 3, 32]);
        assert!(v.nnz() >= 500);
        let i = lena_image(0.05, &mut rng);
        assert_eq!(i.dims(), &[256, 256, 3]);
        assert!(i.nnz() >= 300);
        for t in [&v, &i] {
            let (lo, hi) = t.value_range().unwrap();
            assert!(lo >= 0.0 && hi <= 1.0);
        }
    }

    #[test]
    fn generators_deterministic() {
        let a = movielens(0.001, &mut StdRng::seed_from_u64(9));
        let b = movielens(0.001, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.tensor.values(), b.tensor.values());
        assert_eq!(a.movie_genre, b.movie_genre);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = movielens(0.0, &mut rng);
    }
}
