//! Dataset emission at a chosen storage precision.
//!
//! The generators in this crate produce in-memory [`SparseTensor`]s; the
//! experiment scripts persist them in the authors' whitespace TSV format.
//! These wrappers pick the value formatting by [`StoragePrecision`], so an
//! end-to-end f32 pipeline (generate → write → read → fit with
//! `StoragePrecision::F32`) quantizes exactly once at write time and never
//! round-trips through an f64 text representation: `write_dataset(F32)`
//! emits shortest-roundtrip f32 literals and `read_dataset(F32)` parses
//! them back to the identical f32 bits.

use ptucker_tensor::{
    read_tsv, read_tsv_f32, write_tsv, write_tsv_f32, Result, SparseTensor, StoragePrecision,
};
use std::path::Path;

/// Writes `x` in the 1-based whitespace TSV format, with values formatted
/// at `precision` ([`write_tsv`] / [`write_tsv_f32`]).
///
/// # Errors
/// [`ptucker_tensor::TensorError::Io`] on filesystem problems.
pub fn write_dataset<P: AsRef<Path>>(
    path: P,
    x: &SparseTensor,
    precision: StoragePrecision,
) -> Result<()> {
    match precision {
        StoragePrecision::F64 => write_tsv(path, x),
        StoragePrecision::F32 => write_tsv_f32(path, x),
    }
}

/// Reads a TSV dataset with values parsed at `precision` ([`read_tsv`] /
/// [`read_tsv_f32`]); the inverse of [`write_dataset`] at the same
/// precision.
///
/// # Errors
/// As for [`read_tsv`].
pub fn read_dataset<P: AsRef<Path>>(path: P, precision: StoragePrecision) -> Result<SparseTensor> {
    match precision {
        StoragePrecision::F64 => read_tsv(path),
        StoragePrecision::F32 => read_tsv_f32(path),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn f32_pipeline_quantizes_exactly_once() {
        let mut rng = StdRng::seed_from_u64(17);
        let x = crate::uniform_sparse(&[6, 5, 4], 40, &mut rng);
        let dir = std::env::temp_dir().join("ptucker_datagen_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("u.tsv");
        write_dataset(&path, &x, StoragePrecision::F32).unwrap();
        let back = read_dataset(&path, StoragePrecision::F32).unwrap();
        assert_eq!(back.nnz(), x.nnz());
        for e in 0..x.nnz() {
            // One narrowing at write time; the read recovers those bits.
            let want = (x.value(e) as f32) as f64;
            assert_eq!(back.value(e).to_bits(), want.to_bits());
        }
        // And the f64 path still round-trips bit-exactly.
        write_dataset(&path, &x, StoragePrecision::F64).unwrap();
        let back = read_dataset(&path, StoragePrecision::F64).unwrap();
        for e in 0..x.nnz() {
            assert_eq!(back.value(e).to_bits(), x.value(e).to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
