use crate::uniform::sample_distinct_cells;
use ptucker_linalg::Matrix;
use ptucker_tensor::{CoreTensor, SparseTensor};
use rand::Rng;

/// A sparse tensor with known (planted) Tucker structure.
///
/// Produced by [`planted_lowrank`]; the ground-truth factors and core are
/// kept so tests and accuracy experiments can verify that an algorithm
/// recovers the planted structure (low reconstruction error, low test RMSE).
#[derive(Debug, Clone)]
pub struct PlantedTensor {
    /// The observed entries, values = planted reconstruction + noise.
    pub tensor: SparseTensor,
    /// Ground-truth factor matrices `A⁽ⁿ⁾ ∈ R^{Iₙ×Jₙ}`.
    pub factors: Vec<Matrix>,
    /// Ground-truth core tensor.
    pub core: CoreTensor,
    /// Standard deviation of the additive Gaussian noise.
    pub noise_std: f64,
}

/// Generates a sparse tensor whose observed values follow an exact Tucker
/// model `X = G ×₁ A⁽¹⁾ ⋯ ×_N A⁽ᴺ⁾` plus Gaussian noise.
///
/// Factor entries are uniform on `[0, 1)` scaled by `1/√Jₙ` and the core is
/// uniform on `[0, 1)`, which keeps reconstructed values `O(1)` regardless
/// of rank, mirroring the paper's `[0, 1]` normalization.
///
/// # Panics
/// Panics if `ranks.len() != dims.len()`, any rank is zero or exceeds its
/// dimension, or `nnz` exceeds the grid size.
pub fn planted_lowrank<R: Rng + ?Sized>(
    dims: &[usize],
    ranks: &[usize],
    nnz: usize,
    noise_std: f64,
    rng: &mut R,
) -> PlantedTensor {
    assert_eq!(
        ranks.len(),
        dims.len(),
        "ranks and dims must have the same order"
    );
    assert!(
        ranks.iter().zip(dims).all(|(&j, &i)| j > 0 && j <= i),
        "each rank must satisfy 1 <= J_n <= I_n"
    );
    let order = dims.len();

    // Ground-truth factors and core.
    let factors: Vec<Matrix> = dims
        .iter()
        .zip(ranks)
        .map(|(&i_n, &j_n)| {
            let scale = 1.0 / (j_n as f64).sqrt();
            let data: Vec<f64> = (0..i_n * j_n).map(|_| rng.gen::<f64>() * scale).collect();
            Matrix::from_vec(i_n, j_n, data).expect("length matches by construction")
        })
        .collect();
    let core = CoreTensor::random_dense(ranks.to_vec(), rng).expect("ranks validated above");

    // Sample observed positions, then evaluate the Tucker model.
    let positions = sample_distinct_cells(dims, nnz, rng);
    let mut values = Vec::with_capacity(nnz);
    for e in 0..nnz {
        let idx = &positions[e * order..(e + 1) * order];
        let mut x = reconstruct_at(&core, &factors, idx);
        if noise_std > 0.0 {
            // Box–Muller: keeps the dependency surface to `rand` alone.
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            x += noise_std * z;
        }
        values.push(x);
    }

    let tensor = SparseTensor::from_flat(dims.to_vec(), positions, values)
        .expect("positions are in range by construction");
    PlantedTensor {
        tensor,
        factors,
        core,
        noise_std,
    }
}

/// Generates a sparse tensor following an exact **CP** (canonical
/// polyadic) model of the given rank plus Gaussian noise — i.e. a Tucker
/// model whose core is superdiagonal. Used by the CP-ALS substrate's tests
/// and the CP-vs-Tucker ablation.
///
/// # Panics
/// Panics if `rank` is zero or exceeds any dimension, or `nnz` exceeds the
/// grid size.
pub fn planted_cp<R: Rng + ?Sized>(
    dims: &[usize],
    rank: usize,
    nnz: usize,
    noise_std: f64,
    rng: &mut R,
) -> PlantedTensor {
    assert!(rank > 0, "rank must be positive");
    assert!(
        dims.iter().all(|&d| rank <= d),
        "rank must not exceed any dimension"
    );
    let order = dims.len();
    let factors: Vec<Matrix> = dims
        .iter()
        .map(|&i_n| {
            let scale = 1.0 / (rank as f64).sqrt();
            let data: Vec<f64> = (0..i_n * rank).map(|_| rng.gen::<f64>() * scale).collect();
            Matrix::from_vec(i_n, rank, data).expect("length matches by construction")
        })
        .collect();
    // Superdiagonal core with weights in [0.5, 1.5).
    let entries: Vec<(Vec<usize>, f64)> = (0..rank)
        .map(|r| (vec![r; order], 0.5 + rng.gen::<f64>()))
        .collect();
    let core = CoreTensor::from_entries(vec![rank; order], entries)
        .expect("superdiagonal indices are in range");

    let positions = sample_distinct_cells(dims, nnz, rng);
    let mut values = Vec::with_capacity(nnz);
    for e in 0..nnz {
        let idx = &positions[e * order..(e + 1) * order];
        let mut x = reconstruct_at(&core, &factors, idx);
        if noise_std > 0.0 {
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            x += noise_std * z;
        }
        values.push(x);
    }
    let tensor = SparseTensor::from_flat(dims.to_vec(), positions, values)
        .expect("positions are in range by construction");
    PlantedTensor {
        tensor,
        factors,
        core,
        noise_std,
    }
}

/// Evaluates the Tucker model `Σ_β G_β Π_n A⁽ⁿ⁾(iₙ, jₙ)` at one cell
/// (Eq. 4 of the paper).
pub fn reconstruct_at(core: &CoreTensor, factors: &[Matrix], index: &[usize]) -> f64 {
    let order = index.len();
    debug_assert_eq!(core.order(), order);
    let mut acc = 0.0;
    for e in 0..core.nnz() {
        let beta = core.index(e);
        let mut term = core.value(e);
        for n in 0..order {
            term *= factors[n][(index[n], beta[n])];
        }
        acc += term;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_tensor_matches_model_exactly() {
        let mut rng = StdRng::seed_from_u64(10);
        let p = planted_lowrank(&[8, 7, 6], &[2, 3, 2], 60, 0.0, &mut rng);
        assert_eq!(p.tensor.nnz(), 60);
        for e in 0..p.tensor.nnz() {
            let want = reconstruct_at(&p.core, &p.factors, p.tensor.index(e));
            assert!((p.tensor.value(e) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn noise_perturbs_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = planted_lowrank(&[10, 10], &[2, 2], 50, 0.5, &mut rng);
        let mut max_dev: f64 = 0.0;
        for e in 0..p.tensor.nnz() {
            let clean = reconstruct_at(&p.core, &p.factors, p.tensor.index(e));
            max_dev = max_dev.max((p.tensor.value(e) - clean).abs());
        }
        assert!(max_dev > 1e-3, "noise had no effect");
    }

    #[test]
    fn values_are_bounded_for_any_rank() {
        // The 1/sqrt(J) factor scaling keeps magnitudes O(J^{N/2})… in
        // practice O(1)-ish; just assert finiteness and a loose bound.
        let mut rng = StdRng::seed_from_u64(12);
        let p = planted_lowrank(&[20, 20, 20], &[5, 5, 5], 100, 0.0, &mut rng);
        for &v in p.tensor.values() {
            assert!(v.is_finite());
            assert!(v.abs() < 50.0);
        }
    }

    #[test]
    #[should_panic(expected = "same order")]
    fn rank_arity_mismatch_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = planted_lowrank(&[4, 4], &[2], 4, 0.0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "1 <= J_n <= I_n")]
    fn oversized_rank_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = planted_lowrank(&[4, 4], &[5, 2], 4, 0.0, &mut rng);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = planted_lowrank(&[6, 6], &[2, 2], 20, 0.1, &mut StdRng::seed_from_u64(77));
        let b = planted_lowrank(&[6, 6], &[2, 2], 20, 0.1, &mut StdRng::seed_from_u64(77));
        assert_eq!(a.tensor.values(), b.tensor.values());
    }
}
