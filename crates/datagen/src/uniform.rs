use ptucker_tensor::SparseTensor;
use rand::Rng;
use std::collections::HashSet;

/// Samples `nnz` cell positions from the grid `dims`, returned as flat
/// indices (`positions[e*order..(e+1)*order]`).
///
/// Positions are deduplicated when the grid is dense enough for collisions
/// to be plausible (density ≥ 1e-4); for sparser grids positions are sampled
/// directly, which keeps generation `O(nnz)` at the paper's largest scales
/// while the expected number of duplicates stays ≪ 1%.
pub(crate) fn sample_distinct_cells<R: Rng + ?Sized>(
    dims: &[usize],
    nnz: usize,
    rng: &mut R,
) -> Vec<usize> {
    assert!(!dims.is_empty(), "dims must be non-empty");
    assert!(dims.iter().all(|&d| d > 0), "dims must be positive");
    let order = dims.len();
    let total_cells: f64 = dims.iter().map(|&d| d as f64).product();
    assert!(
        (nnz as f64) <= total_cells,
        "requested {nnz} entries but the grid only has {total_cells} cells"
    );

    let density = nnz as f64 / total_cells;
    let mut positions = Vec::with_capacity(nnz * order);

    if density < 1e-4 {
        for _ in 0..nnz {
            for &d in dims {
                positions.push(rng.gen_range(0..d));
            }
        }
    } else {
        let mut seen: HashSet<u128> = HashSet::with_capacity(nnz * 2);
        let mut buf = vec![0usize; order];
        while seen.len() < nnz {
            let mut lin: u128 = 0;
            for (k, &d) in dims.iter().enumerate() {
                buf[k] = rng.gen_range(0..d);
                lin = lin * (d as u128) + buf[k] as u128;
            }
            if seen.insert(lin) {
                positions.extend_from_slice(&buf);
            }
        }
    }
    positions
}

/// Generates a uniformly random sparse tensor: `nnz` cells chosen uniformly
/// over the grid, each with a value drawn uniformly from `[0, 1)`.
///
/// This matches the synthetic workloads of Section IV-B1 ("we generate
/// random tensors of size I₁ = I₂ = … = I_N with real-valued entries between
/// 0 and 1").
///
/// # Panics
/// Panics if `nnz` exceeds the number of cells in the grid, if `dims` is
/// empty, or if any dimension is zero.
pub fn uniform_sparse<R: Rng + ?Sized>(dims: &[usize], nnz: usize, rng: &mut R) -> SparseTensor {
    let positions = sample_distinct_cells(dims, nnz, rng);
    let values: Vec<f64> = (0..nnz).map(|_| rng.gen::<f64>()).collect();
    SparseTensor::from_flat(dims.to_vec(), positions, values)
        .expect("generated indices are in range by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform_sparse(&[50, 40, 30], 500, &mut rng);
        assert_eq!(t.dims(), &[50, 40, 30]);
        assert_eq!(t.nnz(), 500);
        assert!(t.values().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn dense_grid_has_distinct_cells() {
        let mut rng = StdRng::seed_from_u64(2);
        // 4x4 grid, 16 entries: must occupy every cell exactly once.
        let t = uniform_sparse(&[4, 4], 16, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for e in 0..t.nnz() {
            assert!(seen.insert(t.index(e).to_vec()), "duplicate cell");
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = uniform_sparse(&[20, 20], 100, &mut StdRng::seed_from_u64(9));
        let b = uniform_sparse(&[20, 20], 100, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.values(), b.values());
        assert_eq!(a.flat_indices(), b.flat_indices());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn too_many_entries_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = uniform_sparse(&[2, 2], 5, &mut rng);
    }

    #[test]
    fn very_sparse_path_works() {
        let mut rng = StdRng::seed_from_u64(5);
        // Density 1000 / 10^9 = 1e-6: exercises the direct-sampling branch.
        let t = uniform_sparse(&[1000, 1000, 1000], 1000, &mut rng);
        assert_eq!(t.nnz(), 1000);
    }
}
