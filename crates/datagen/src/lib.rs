//! Synthetic tensor generators for the P-Tucker experiments.
//!
//! Three families of data cover everything Section IV of the paper needs:
//!
//! * [`uniform_sparse`] — "random tensors … with real-valued entries between
//!   0 and 1" (Section IV-B1), used for the order/dimensionality/|Ω|/rank
//!   scalability sweeps of Figure 6 and the thread sweep of Figure 10;
//! * [`planted_lowrank`] — tensors with known Tucker structure plus noise,
//!   used wherever *recoverable* latent structure matters (accuracy
//!   comparisons, convergence tests, property tests);
//! * [`realworld`] — simulated stand-ins for the four licensed datasets
//!   (MovieLens, Yahoo-music, sea-wave video, Lena image) with the same
//!   order/shape/sparsity profile, Zipf-skewed activity and **planted**
//!   genre clusters and (year, hour) relations so that the discovery
//!   experiments (Tables V and VI) have a ground truth to recover.
//!
//! All generators are deterministic given a seeded RNG.
//!
//! For tensors **larger than memory**, the [`stream`] module writes the
//! same families straight to a disk-resident COO scratch file in bounded
//! memory — the front end of the engine's disk-to-disk fit pipeline.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod io;
mod lowrank;
pub mod realworld;
pub mod stream;
mod uniform;
mod zipf;

pub use io::{read_dataset, write_dataset};
pub use lowrank::{planted_cp, planted_lowrank, reconstruct_at, PlantedTensor};
pub use stream::{
    scratch_to_tensor, stream_uniform_to_scratch, stream_zipf_to_scratch, tsv_to_scratch,
};
pub use uniform::uniform_sparse;
pub use zipf::Zipf;
