use rand::Rng;

/// A Zipf-distributed sampler over `{0, …, n-1}` with exponent `s`:
/// `P(i) ∝ 1 / (i+1)^s`.
///
/// Real rating tensors have heavily skewed slice sizes — a few users rate
/// thousands of items while most rate a handful. That skew is exactly why
/// the paper's dynamic scheduling beats a naive static split (Section IV-D),
/// so the simulated datasets sample user/item indices from this
/// distribution.
///
/// Sampling is inverse-CDF with binary search over a precomputed table:
/// `O(n)` memory once, `O(log n)` per sample.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` items with exponent `s ≥ 0`
    /// (`s = 0` is uniform).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf domain must be non-empty");
        assert!(
            s >= 0.0 && s.is_finite(),
            "zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the tail.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of items in the domain.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the domain is empty (cannot happen after construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index whose cdf >= u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts={counts:?}");
        }
    }

    #[test]
    fn skewed_when_s_positive() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Head much heavier than tail.
        assert!(counts[0] > 10 * counts[50].max(1));
        // Monotone-ish decay between head and mid.
        assert!(counts[0] > counts[5]);
        assert!(counts[5] > counts[40].saturating_sub(200));
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(7, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn singleton_domain() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
