//! Property-based tests of the synthetic generators: shape contracts,
//! determinism, and model-faithfulness of the planted tensors.

use proptest::prelude::*;
use ptucker_datagen::{planted_cp, planted_lowrank, reconstruct_at, uniform_sparse, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn uniform_sparse_contract(
        dims in proptest::collection::vec(2..20usize, 2..4),
        frac in 0.01..0.5f64,
        seed in 0u64..1000,
    ) {
        let cells: usize = dims.iter().product();
        let nnz = ((cells as f64 * frac) as usize).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let t = uniform_sparse(&dims, nnz, &mut rng);
        prop_assert_eq!(t.nnz(), nnz);
        prop_assert_eq!(t.dims(), &dims[..]);
        for (idx, v) in t.iter() {
            prop_assert!((0.0..1.0).contains(&v));
            for (i, d) in idx.iter().zip(&dims) {
                prop_assert!(i < d);
            }
        }
    }

    #[test]
    fn planted_lowrank_noiseless_is_exact(
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = planted_lowrank(&[9, 8, 7], &[2, 3, 2], 50, 0.0, &mut rng);
        for e in 0..p.tensor.nnz() {
            let want = reconstruct_at(&p.core, &p.factors, p.tensor.index(e));
            prop_assert!((p.tensor.value(e) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn planted_cp_core_is_superdiagonal(seed in 0u64..500, rank in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = planted_cp(&[8, 8, 8], rank, 40, 0.0, &mut rng);
        prop_assert_eq!(p.core.nnz(), rank);
        for e in 0..p.core.nnz() {
            let idx = p.core.index(e);
            prop_assert!(idx.iter().all(|&j| j == idx[0]), "off-diagonal core entry");
            prop_assert!(p.core.value(e) > 0.0);
        }
    }

    #[test]
    fn zipf_is_a_probability_distribution(n in 1usize..500, s in 0.0..3.0f64, seed in 0u64..100) {
        let z = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn generators_are_pure_functions_of_the_seed(seed in 0u64..1000) {
        let a = uniform_sparse(&[15, 15], 40, &mut StdRng::seed_from_u64(seed));
        let b = uniform_sparse(&[15, 15], 40, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a.values(), b.values());
        prop_assert_eq!(a.flat_indices(), b.flat_indices());
        let pa = planted_cp(&[8, 8], 2, 20, 0.1, &mut StdRng::seed_from_u64(seed));
        let pb = planted_cp(&[8, 8], 2, 20, 0.1, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(pa.tensor.values(), pb.tensor.values());
    }
}
