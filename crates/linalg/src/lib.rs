//! Dense linear-algebra substrate for the P-Tucker reproduction.
//!
//! The ICDE'18 P-Tucker paper relies on Armadillo/LAPACK for three numerical
//! kernels:
//!
//! 1. solving the regularized normal equations `(B + λI) x = c` for every row
//!    of every factor matrix (Eq. 9 of the paper),
//! 2. Householder QR to orthogonalize the factor matrices after convergence
//!    (Eq. 7), and
//! 3. truncated SVD inside the HOOI-style baselines (Tucker-ALS, Tucker-CSF,
//!    S-HOT), where the leading left singular vectors of a tall matricized
//!    tensor are required.
//!
//! This crate implements those kernels from scratch on a small row-major
//! [`Matrix`] type. All matrices involved are modest (`Jₙ×Jₙ` for P-Tucker and
//! `J^{N-1}`-sized Gram matrices for the baselines), so textbook dense
//! algorithms are appropriate and match LAPACK behaviour at these sizes.
//!
//! On top of the factorizations, [`kernels`] supplies the BLAS-1/2
//! micro-kernel primitives (`dot`/`axpy`/`syr_in_place`/
//! `hadamard_in_place`) the run-blocked δ accumulation is built from —
//! chunked scalar code that autovectorizes everywhere, plus an explicit
//! AVX2+FMA path behind the **`simd`** cargo feature and a 512-bit
//! `avx512f` path behind **`simd-avx512`**, each with runtime CPU
//! detection and scalar fallback. The SIMD features are the only part of
//! the workspace that uses `unsafe` (the `std::arch` intrinsic calls);
//! without them this crate still forbids unsafe code outright. Alongside
//! the f64 primitives, [`kernels`] carries mixed-precision variants
//! (`dot_f32_f64`, `axpy_into_f64`, `div_add_nonzero_f32`, widening
//! helpers) for the engine's f32 storage mode — 4-byte streams, f64
//! arithmetic.
//!
//! # Quick example
//!
//! ```
//! use ptucker_linalg::Matrix;
//!
//! // Solve an SPD system with Cholesky, as P-Tucker does per row update.
//! let b = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let x = b.cholesky().unwrap().solve(&[1.0, 2.0]);
//! let r = b.matvec(&x);
//! assert!((r[0] - 1.0).abs() < 1e-12 && (r[1] - 2.0).abs() < 1e-12);
//! ```

#![deny(missing_docs)]
#![cfg_attr(
    not(any(feature = "simd", feature = "simd-avx512")),
    forbid(unsafe_code)
)]
#![deny(unsafe_code)]
#![allow(clippy::needless_range_loop)]

mod cholesky;
mod eigen;
mod error;
pub mod kernels;
mod lu;
mod matrix;
mod qr;
pub mod solve;
mod svd;

pub use cholesky::Cholesky;
pub use eigen::{sym_eigen, SymEigen};
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr::Qr;
pub use solve::{
    cholesky_factor_in_place, cholesky_solve_factored, cholesky_solve_in_place, lu_factor_in_place,
    lu_solve_factored, lu_solve_in_place,
};
pub use svd::{leading_left_singular_vectors, GramSvd};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
