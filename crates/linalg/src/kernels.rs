//! Vectorizable micro-kernel primitives for the row-update hot loops.
//!
//! These are the BLAS-1/2 fragments the δ accumulation of P-Tucker's
//! Theorem 1 decomposes into once the core walk is run-blocked:
//!
//! * [`dot`] — `Σ aᵢ·bᵢ`, the per-run δ contribution when the update mode
//!   is not the tail coordinate,
//! * [`axpy`] — `y += α·x`, the per-run δ scatter when it is (and the rows
//!   of [`syr_in_place`]),
//! * [`syr_in_place`] — the triangular rank-1 update `B += δδᵀ`,
//! * [`hadamard_in_place`] — `y *= x`, CP-ALS's whole-row δ product,
//! * [`div_add_nonzero`] — `y += num/den` with zero divisors skipped, the
//!   P-Tucker-Cache cached-δ divide (`_mm256_div_pd` with a compare/blend
//!   for the zero-divisor lanes on the SIMD path).
//!
//! [`dot`] and [`axpy`] — the primitives the hot loops spend their time
//! in — each have two implementations behind one safe entry point:
//!
//! 1. a **chunked scalar** path written as 4-lane blocks over
//!    `chunks_exact`, which LLVM autovectorizes on any target, and
//! 2. an explicit **AVX2+FMA** path (`std::arch`) compiled only under the
//!    `simd` cargo feature on x86-64, selected by cached runtime CPU
//!    detection with the scalar path as fallback.
//!
//! [`syr_in_place`] is a row loop over [`axpy`], so it inherits both
//! paths; [`hadamard_in_place`] is a plain element-wise loop (trivially
//! autovectorized, no explicit SIMD variant).
//!
//! Determinism notes: every primitive is deterministic for fixed inputs on
//! a fixed code path, and the element-wise ones ([`axpy`],
//! [`syr_in_place`], [`hadamard_in_place`]) are additionally insensitive to
//! chunk width. Across *paths* the AVX2 code uses FMA (one rounding per
//! multiply-add instead of two), so SIMD and scalar builds agree only to
//! floating-point noise — callers must compare against references with a
//! tolerance, not bitwise. [`dot`] accumulates in four lanes reduced as
//! `(l₀+l₂)+(l₁+l₃)` on both paths so the orderings match.
//!
//! ## Mixed precision (f32 storage, f64 accumulation)
//!
//! The `f32` storage mode keeps *streamed* data (plan values, the cached
//! Pres table) in 4-byte slots while every arithmetic step still runs in
//! f64: [`dot_f32_f64`], [`axpy_into_f64`], [`div_add_nonzero_f32`],
//! [`sum_widened`] and [`widen_into`] widen each f32 element to f64 at
//! load time (an exact conversion) and then perform the identical f64
//! operation. Because the widening itself never rounds, the divide-style
//! primitives are bitwise identical across scalar/AVX2/AVX-512 paths just
//! like their all-f64 counterparts.
//!
//! ## AVX-512 tier (`simd-avx512` feature)
//!
//! A third implementation tier behind the `simd-avx512` cargo feature uses
//! 512-bit lanes (`avx512f`, runtime-detected). Dispatch order is
//! AVX-512 → AVX2 → scalar; each tier falls through cleanly when its CPU
//! feature is absent. The 8-lane horizontal sum reduces pairwise halves
//! before the 4-lane `(l₀+l₂)+(l₁+l₃)` reduction, so [`dot`] on the
//! AVX-512 path differs from the scalar/AVX2 paths by floating-point
//! noise only (compare with a tolerance); [`div_add_nonzero`] and
//! [`div_add_nonzero_f32`] stay bitwise identical across all three tiers
//! (one rounded quotient per element, no reassociation).

/// `Σ aᵢ·bᵢ` over two equal-length slices.
///
/// # Panics
/// Debug-asserts equal lengths; in release the shorter length governs.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(all(feature = "simd-avx512", target_arch = "x86_64"))]
    if let Some(v) = avx512::try_dot(a, b) {
        return v;
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if let Some(v) = avx2::try_dot(a, b) {
        return v;
    }
    dot_scalar(a, b)
}

/// `y ← y + α·x` element-wise over the common prefix length.
///
/// # Panics
/// Debug-asserts `x.len() <= y.len()`; extra `y` elements are untouched.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert!(x.len() <= y.len());
    #[cfg(all(feature = "simd-avx512", target_arch = "x86_64"))]
    if avx512::try_axpy(alpha, x, y) {
        return;
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2::try_axpy(alpha, x, y) {
        return;
    }
    axpy_scalar(alpha, x, y)
}

/// Triangular rank-1 update `B ← B + δδᵀ` on the upper triangle of a
/// row-major `j×j` buffer (lower triangle untouched) — the accumulation of
/// the normal-equation matrix in Theorem 1. Rows with `δ(j₁) = 0`
/// contribute nothing and are skipped.
///
/// # Panics
/// Debug-asserts `delta.len() == j` and `b_upper.len() >= j*j`.
#[inline]
pub fn syr_in_place(b_upper: &mut [f64], j: usize, delta: &[f64]) {
    debug_assert_eq!(delta.len(), j);
    debug_assert!(b_upper.len() >= j * j);
    for j1 in 0..j {
        let d1 = delta[j1];
        if d1 == 0.0 {
            continue;
        }
        axpy(d1, &delta[j1..], &mut b_upper[j1 * j + j1..j1 * j + j]);
    }
}

/// `y ← y ⊙ x` element-wise over the common prefix length.
///
/// # Panics
/// Debug-asserts `x.len() <= y.len()`; extra `y` elements are untouched.
#[inline]
pub fn hadamard_in_place(y: &mut [f64], x: &[f64]) {
    debug_assert!(x.len() <= y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi *= xi;
    }
}

/// `y[i] += num[i] / den[i]` wherever `den[i] != 0`, skipping zero
/// divisors; returns whether any divisor was zero — the P-Tucker-Cache
/// cached-δ inner loop (Theorem 5's one-division-per-pair), whose
/// zero-divisor positions the *caller* patches with the direct-product
/// fallback (the paper's explicit caveat).
///
/// The AVX2 path (`simd` feature) does the whole quotient with
/// `_mm256_div_pd` and a compare/blend that restores the *original* `y`
/// in the lanes whose divisor is zero; the scalar path branches per
/// element. Both add exactly one rounded quotient per nonzero-divisor
/// element — and leave zero-divisor slots bitwise untouched (sign of
/// `-0.0` included) — in the same element order, so the two paths are
/// bitwise identical (division has no FMA contraction to diverge on).
///
/// # Panics
/// Debug-asserts `num.len() == den.len()` and `num.len() <= y.len()`.
#[inline]
pub fn div_add_nonzero(y: &mut [f64], num: &[f64], den: &[f64]) -> bool {
    debug_assert_eq!(num.len(), den.len());
    debug_assert!(num.len() <= y.len());
    #[cfg(all(feature = "simd-avx512", target_arch = "x86_64"))]
    if let Some(saw_zero) = avx512::try_div_add_nonzero(y, num, den) {
        return saw_zero;
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if let Some(saw_zero) = avx2::try_div_add_nonzero(y, num, den) {
        return saw_zero;
    }
    div_add_nonzero_scalar(y, num, den)
}

/// `Σ (aᵢ as f64)·bᵢ` over an f32-storage slice and an f64 slice — the
/// mixed-precision [`dot`]: each f32 element is widened to f64 (exactly)
/// before the multiply, and all accumulation runs in f64.
///
/// # Panics
/// Debug-asserts equal lengths; in release the shorter length governs.
#[inline]
pub fn dot_f32_f64(a: &[f32], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(all(feature = "simd-avx512", target_arch = "x86_64"))]
    if let Some(v) = avx512::try_dot_f32(a, b) {
        return v;
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if let Some(v) = avx2::try_dot_f32(a, b) {
        return v;
    }
    dot_f32_f64_scalar(a, b)
}

/// `y ← y + α·(x as f64)` element-wise over the common prefix length —
/// the mixed-precision [`axpy`] with f32-storage `x` widened at load and
/// the multiply-add performed in f64.
///
/// # Panics
/// Debug-asserts `x.len() <= y.len()`; extra `y` elements are untouched.
#[inline]
pub fn axpy_into_f64(alpha: f64, x: &[f32], y: &mut [f64]) {
    debug_assert!(x.len() <= y.len());
    #[cfg(all(feature = "simd-avx512", target_arch = "x86_64"))]
    if avx512::try_axpy_f32(alpha, x, y) {
        return;
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2::try_axpy_f32(alpha, x, y) {
        return;
    }
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi as f64;
    }
}

/// [`div_add_nonzero`] with f32-storage numerators: `y[i] += num[i]/den[i]`
/// wherever `den[i] != 0`, the numerator widened to f64 before the divide.
/// Returns whether any divisor was zero. Like the all-f64 variant this is
/// bitwise identical across scalar/AVX2/AVX-512 paths (widening is exact,
/// division adds one rounding per element, zero-divisor slots stay
/// bitwise untouched).
///
/// # Panics
/// Debug-asserts `num.len() == den.len()` and `num.len() <= y.len()`.
#[inline]
pub fn div_add_nonzero_f32(y: &mut [f64], num: &[f32], den: &[f64]) -> bool {
    debug_assert_eq!(num.len(), den.len());
    debug_assert!(num.len() <= y.len());
    #[cfg(all(feature = "simd-avx512", target_arch = "x86_64"))]
    if let Some(saw_zero) = avx512::try_div_add_nonzero_f32(y, num, den) {
        return saw_zero;
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if let Some(saw_zero) = avx2::try_div_add_nonzero_f32(y, num, den) {
        return saw_zero;
    }
    div_add_nonzero_f32_scalar(y, num, den)
}

/// `Σ (xᵢ as f64)` — the widening sum over an f32-storage slice, used by
/// the cached-δ non-tail accumulation. Four independent f64 lanes over
/// 4-element blocks (autovectorizable), reduced `(l₀+l₂)+(l₁+l₃)`.
#[inline]
pub fn sum_widened(x: &[f32]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let blocks = x.len() / 4;
    for c in x[..blocks * 4].chunks_exact(4) {
        for l in 0..4 {
            lanes[l] += c[l] as f64;
        }
    }
    let mut tail = 0.0;
    for &v in &x[blocks * 4..] {
        tail += v as f64;
    }
    (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]) + tail
}

/// Widening load helper: `dst[i] = src[i] as f64` over the common prefix
/// length (an exact conversion; extra `dst` elements are untouched).
/// Element-wise, so trivially autovectorized — no explicit SIMD variant.
///
/// # Panics
/// Debug-asserts `src.len() <= dst.len()`.
#[inline]
pub fn widen_into(dst: &mut [f64], src: &[f32]) {
    debug_assert!(src.len() <= dst.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s as f64;
    }
}

/// Selects the top `k` of `scores` into `out` as `(index, score)` pairs,
/// sorted by **descending score with ties broken by ascending index** —
/// a total, deterministic order (scores compare by [`f64::total_cmp`],
/// so even NaNs rank reproducibly). `k` larger than `scores.len()`
/// returns everything; `out` is cleared and reused, so a caller that
/// keeps one buffer per worker pays no allocation after warm-up — this
/// is the ranking tail of the top-K query hot path.
///
/// Two strategies behind one entry point: a sorted insertion buffer
/// (binary-search position, `O(n·log k)` comparisons plus `O(k)` moves
/// on improvement) when `k` is small against `n`, and a full
/// `sort_unstable` (in-place, allocation-free) when `k` is a sizable
/// fraction of `n` and the buffer would churn.
///
/// # Panics
/// Debug-asserts `scores.len() <= u32::MAX` (indices travel as `u32`).
pub fn top_k_select(scores: &[f64], k: usize, out: &mut Vec<(u32, f64)>) {
    use std::cmp::Ordering;
    debug_assert!(scores.len() <= u32::MAX as usize);
    out.clear();
    let k = k.min(scores.len());
    if k == 0 {
        return;
    }
    if k * 4 >= scores.len() {
        out.extend(scores.iter().enumerate().map(|(i, &s)| (i as u32, s)));
        out.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(k);
        return;
    }
    for (i, &s) in scores.iter().enumerate() {
        // A full buffer whose worst entry outranks the candidate ends it
        // here; an *equal* worst also wins (it has the lower index).
        if out.len() == k && out[k - 1].1.total_cmp(&s) != Ordering::Less {
            continue;
        }
        // First position strictly below the candidate: equal scores stay
        // ahead of it, preserving the ascending-index tie order.
        let pos = out.partition_point(|e| e.1.total_cmp(&s) != Ordering::Less);
        if out.len() == k {
            out.pop();
        }
        out.insert(pos, (i as u32, s));
    }
}

/// The scalar mixed-precision dot: same 4-lane structure as `dot_scalar`,
/// with the f32 operand widened per element.
#[inline]
fn dot_f32_f64_scalar(a: &[f32], b: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let n = a.len().min(b.len());
    let blocks = n / 4;
    for (ca, cb) in a[..blocks * 4].chunks_exact(4).zip(b.chunks_exact(4)) {
        for l in 0..4 {
            lanes[l] += ca[l] as f64 * cb[l];
        }
    }
    let mut tail = 0.0;
    for (&x, &y) in a[blocks * 4..n].iter().zip(&b[blocks * 4..n]) {
        tail += x as f64 * y;
    }
    (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]) + tail
}

/// The scalar f32-numerator divide-add: per-element branch on the divisor.
#[inline]
fn div_add_nonzero_f32_scalar(y: &mut [f64], num: &[f32], den: &[f64]) -> bool {
    let mut saw_zero = false;
    for ((yi, &n), &d) in y.iter_mut().zip(num).zip(den) {
        if d != 0.0 {
            *yi += n as f64 / d;
        } else {
            saw_zero = true;
        }
    }
    saw_zero
}

/// The scalar divide-add: per-element branch on the divisor.
#[inline]
fn div_add_nonzero_scalar(y: &mut [f64], num: &[f64], den: &[f64]) -> bool {
    let mut saw_zero = false;
    for ((yi, &n), &d) in y.iter_mut().zip(num).zip(den) {
        if d != 0.0 {
            *yi += n / d;
        } else {
            saw_zero = true;
        }
    }
    saw_zero
}

/// The autovectorizable scalar dot: four independent accumulator lanes
/// over 4-element blocks, reduced in the same `(l₀+l₂)+(l₁+l₃)` order as
/// the SIMD path's horizontal sum.
#[inline]
fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let n = a.len().min(b.len());
    let blocks = n / 4;
    for (ca, cb) in a[..blocks * 4].chunks_exact(4).zip(b.chunks_exact(4)) {
        for l in 0..4 {
            lanes[l] += ca[l] * cb[l];
        }
    }
    let mut tail = 0.0;
    for (x, y) in a[blocks * 4..n].iter().zip(&b[blocks * 4..n]) {
        tail += x * y;
    }
    (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]) + tail
}

/// The autovectorizable scalar axpy. Element-wise, so the chunk width is
/// invisible in the results.
#[inline]
fn axpy_scalar(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Explicit AVX2+FMA implementations, compiled only with `--features simd`
/// on x86-64 and entered only after runtime CPU detection.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod avx2 {
    use std::arch::x86_64::{
        __m256d, _mm256_add_pd, _mm256_blendv_pd, _mm256_castpd256_pd128, _mm256_cmp_pd,
        _mm256_cvtps_pd, _mm256_div_pd, _mm256_extractf128_pd, _mm256_fmadd_pd, _mm256_loadu_pd,
        _mm256_movemask_pd, _mm256_set1_pd, _mm256_setzero_pd, _mm256_storeu_pd, _mm_add_pd,
        _mm_add_sd, _mm_cvtsd_f64, _mm_loadu_ps, _mm_unpackhi_pd, _CMP_EQ_OQ,
    };

    /// Whether this CPU supports the AVX2+FMA path. `std` caches the
    /// detection result, so the per-call cost is one predictable load.
    #[inline]
    fn enabled() -> bool {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }

    /// Safe dispatch: `Some(Σ aᵢ·bᵢ)` on AVX2+FMA CPUs, `None` otherwise.
    #[inline]
    pub(super) fn try_dot(a: &[f64], b: &[f64]) -> Option<f64> {
        // SAFETY: `enabled` verified AVX2+FMA support on this CPU.
        enabled().then(|| unsafe { dot(a, b) })
    }

    /// Safe dispatch: performs `y += α·x` and returns `true` on AVX2+FMA
    /// CPUs, leaves `y` untouched and returns `false` otherwise.
    #[inline]
    pub(super) fn try_axpy(alpha: f64, x: &[f64], y: &mut [f64]) -> bool {
        if !enabled() {
            return false;
        }
        // SAFETY: `enabled` verified AVX2+FMA support on this CPU.
        unsafe { axpy(alpha, x, y) };
        true
    }

    /// Reduces 4 lanes as `(l₀+l₂)+(l₁+l₃)` — mirrored by `dot_scalar`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v); // l₀, l₁
        let hi = _mm256_extractf128_pd::<1>(v); // l₂, l₃
        let s = _mm_add_pd(lo, hi); // l₀+l₂, l₁+l₃
        _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
    }

    /// # Safety
    /// Requires AVX2+FMA (callers check [`enabled`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let blocks = n / 4;
        let mut acc = _mm256_setzero_pd();
        for i in 0..blocks {
            let va = _mm256_loadu_pd(a.as_ptr().add(i * 4));
            let vb = _mm256_loadu_pd(b.as_ptr().add(i * 4));
            acc = _mm256_fmadd_pd(va, vb, acc);
        }
        let mut tail = 0.0;
        for i in blocks * 4..n {
            tail = a[i].mul_add(b[i], tail);
        }
        hsum(acc) + tail
    }

    /// Safe dispatch for the cached-δ divide: performs the masked
    /// `y += num/den` and returns `Some(saw_zero)` on AVX2+FMA CPUs,
    /// leaves `y` untouched and returns `None` otherwise.
    #[inline]
    pub(super) fn try_div_add_nonzero(y: &mut [f64], num: &[f64], den: &[f64]) -> Option<bool> {
        // SAFETY: `enabled` verified AVX2+FMA support on this CPU.
        enabled().then(|| unsafe { div_add_nonzero(y, num, den) })
    }

    /// # Safety
    /// Requires AVX2+FMA (callers check [`enabled`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn div_add_nonzero(y: &mut [f64], num: &[f64], den: &[f64]) -> bool {
        let n = num.len().min(den.len()).min(y.len());
        let blocks = n / 4;
        let zero = _mm256_setzero_pd();
        let mut zero_lanes = 0i32;
        for i in 0..blocks {
            let vn = _mm256_loadu_pd(num.as_ptr().add(i * 4));
            let vd = _mm256_loadu_pd(den.as_ptr().add(i * 4));
            let vy = _mm256_loadu_pd(y.as_ptr().add(i * 4));
            // Quotient + add everywhere (0-divisor lanes produce ±inf/NaN),
            // then blend the *original* y back into those lanes — leaving
            // them untouched exactly like the scalar branch does (an added
            // +0.0 would flip a -0.0 accumulator's sign bit).
            let mask = _mm256_cmp_pd::<_CMP_EQ_OQ>(vd, zero);
            let sum = _mm256_add_pd(vy, _mm256_div_pd(vn, vd));
            zero_lanes |= _mm256_movemask_pd(mask);
            _mm256_storeu_pd(y.as_mut_ptr().add(i * 4), _mm256_blendv_pd(sum, vy, mask));
        }
        let mut saw_zero = zero_lanes != 0;
        for i in blocks * 4..n {
            if den[i] != 0.0 {
                y[i] += num[i] / den[i];
            } else {
                saw_zero = true;
            }
        }
        saw_zero
    }

    /// # Safety
    /// Requires AVX2+FMA (callers check [`enabled`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len().min(y.len());
        let blocks = n / 4;
        let va = _mm256_set1_pd(alpha);
        for i in 0..blocks {
            let vx = _mm256_loadu_pd(x.as_ptr().add(i * 4));
            let vy = _mm256_loadu_pd(y.as_ptr().add(i * 4));
            _mm256_storeu_pd(y.as_mut_ptr().add(i * 4), _mm256_fmadd_pd(va, vx, vy));
        }
        for i in blocks * 4..n {
            y[i] = alpha.mul_add(x[i], y[i]);
        }
    }

    /// Widens 4 packed f32s to a 4-lane f64 vector (exact conversion).
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn load_widen4(p: *const f32) -> __m256d {
        _mm256_cvtps_pd(_mm_loadu_ps(p))
    }

    /// Safe dispatch for the mixed dot: `Some(Σ (aᵢ as f64)·bᵢ)` on
    /// AVX2+FMA CPUs, `None` otherwise.
    #[inline]
    pub(super) fn try_dot_f32(a: &[f32], b: &[f64]) -> Option<f64> {
        // SAFETY: `enabled` verified AVX2+FMA support on this CPU.
        enabled().then(|| unsafe { dot_f32(a, b) })
    }

    /// # Safety
    /// Requires AVX2+FMA (callers check [`enabled`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dot_f32(a: &[f32], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let blocks = n / 4;
        let mut acc = _mm256_setzero_pd();
        for i in 0..blocks {
            let va = load_widen4(a.as_ptr().add(i * 4));
            let vb = _mm256_loadu_pd(b.as_ptr().add(i * 4));
            acc = _mm256_fmadd_pd(va, vb, acc);
        }
        let mut tail = 0.0;
        for i in blocks * 4..n {
            tail = (a[i] as f64).mul_add(b[i], tail);
        }
        hsum(acc) + tail
    }

    /// Safe dispatch for the mixed axpy: performs `y += α·(x as f64)` and
    /// returns `true` on AVX2+FMA CPUs, leaves `y` untouched otherwise.
    #[inline]
    pub(super) fn try_axpy_f32(alpha: f64, x: &[f32], y: &mut [f64]) -> bool {
        if !enabled() {
            return false;
        }
        // SAFETY: `enabled` verified AVX2+FMA support on this CPU.
        unsafe { axpy_f32(alpha, x, y) };
        true
    }

    /// # Safety
    /// Requires AVX2+FMA (callers check [`enabled`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy_f32(alpha: f64, x: &[f32], y: &mut [f64]) {
        let n = x.len().min(y.len());
        let blocks = n / 4;
        let va = _mm256_set1_pd(alpha);
        for i in 0..blocks {
            let vx = load_widen4(x.as_ptr().add(i * 4));
            let vy = _mm256_loadu_pd(y.as_ptr().add(i * 4));
            _mm256_storeu_pd(y.as_mut_ptr().add(i * 4), _mm256_fmadd_pd(va, vx, vy));
        }
        for i in blocks * 4..n {
            y[i] = alpha.mul_add(x[i] as f64, y[i]);
        }
    }

    /// Safe dispatch for the f32-numerator cached-δ divide.
    #[inline]
    pub(super) fn try_div_add_nonzero_f32(y: &mut [f64], num: &[f32], den: &[f64]) -> Option<bool> {
        // SAFETY: `enabled` verified AVX2+FMA support on this CPU.
        enabled().then(|| unsafe { div_add_nonzero_f32(y, num, den) })
    }

    /// # Safety
    /// Requires AVX2+FMA (callers check [`enabled`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn div_add_nonzero_f32(y: &mut [f64], num: &[f32], den: &[f64]) -> bool {
        let n = num.len().min(den.len()).min(y.len());
        let blocks = n / 4;
        let zero = _mm256_setzero_pd();
        let mut zero_lanes = 0i32;
        for i in 0..blocks {
            let vn = load_widen4(num.as_ptr().add(i * 4));
            let vd = _mm256_loadu_pd(den.as_ptr().add(i * 4));
            let vy = _mm256_loadu_pd(y.as_ptr().add(i * 4));
            let mask = _mm256_cmp_pd::<_CMP_EQ_OQ>(vd, zero);
            let sum = _mm256_add_pd(vy, _mm256_div_pd(vn, vd));
            zero_lanes |= _mm256_movemask_pd(mask);
            _mm256_storeu_pd(y.as_mut_ptr().add(i * 4), _mm256_blendv_pd(sum, vy, mask));
        }
        let mut saw_zero = zero_lanes != 0;
        for i in blocks * 4..n {
            if den[i] != 0.0 {
                y[i] += num[i] as f64 / den[i];
            } else {
                saw_zero = true;
            }
        }
        saw_zero
    }
}

/// Explicit AVX-512 implementations (8-lane f64), compiled only with
/// `--features simd-avx512` on x86-64 and entered only after runtime
/// `avx512f` detection; [`enabled`](avx512::enabled) false falls through
/// to the AVX2 tier (if built and detected) and then scalar.
#[cfg(all(feature = "simd-avx512", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod avx512 {
    use std::arch::x86_64::{
        __m256d, __m512d, _mm256_add_pd, _mm256_castpd256_pd128, _mm256_extractf128_pd,
        _mm256_loadu_ps, _mm512_add_pd, _mm512_cmp_pd_mask, _mm512_cvtps_pd, _mm512_div_pd,
        _mm512_extractf64x4_pd, _mm512_fmadd_pd, _mm512_loadu_pd, _mm512_mask_blend_pd,
        _mm512_set1_pd, _mm512_setzero_pd, _mm512_storeu_pd, _mm_add_pd, _mm_add_sd, _mm_cvtsd_f64,
        _mm_unpackhi_pd, _CMP_EQ_OQ,
    };

    /// Whether this CPU supports the AVX-512 path. `std` caches the
    /// detection result, so the per-call cost is one predictable load.
    /// (`avx512f` alone suffices: fused multiply-add, masked blends and
    /// the f32→f64 convert are all foundation instructions.)
    #[inline]
    pub(super) fn enabled() -> bool {
        is_x86_feature_detected!("avx512f")
    }

    /// Reduces 8 lanes by adding the high and low 256-bit halves, then the
    /// same `(l₀+l₂)+(l₁+l₃)` 4-lane reduction as the AVX2/scalar paths.
    /// The extra half-add reorders the sum relative to those paths, so dot
    /// results differ from them by floating-point noise.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn hsum8(v: __m512d) -> f64 {
        let half: __m256d = _mm256_add_pd(
            _mm512_extractf64x4_pd::<0>(v),
            _mm512_extractf64x4_pd::<1>(v),
        );
        let lo = _mm256_castpd256_pd128(half);
        let hi = _mm256_extractf128_pd::<1>(half);
        let s = _mm_add_pd(lo, hi);
        _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
    }

    /// Widens 8 packed f32s to an 8-lane f64 vector (exact conversion).
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn load_widen8(p: *const f32) -> __m512d {
        _mm512_cvtps_pd(_mm256_loadu_ps(p))
    }

    /// Safe dispatch: `Some(Σ aᵢ·bᵢ)` on AVX-512 CPUs, `None` otherwise.
    #[inline]
    pub(super) fn try_dot(a: &[f64], b: &[f64]) -> Option<f64> {
        // SAFETY: `enabled` verified avx512f support on this CPU.
        enabled().then(|| unsafe { dot(a, b) })
    }

    /// # Safety
    /// Requires avx512f (callers check [`enabled`]).
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let blocks = n / 8;
        let mut acc = _mm512_setzero_pd();
        for i in 0..blocks {
            let va = _mm512_loadu_pd(a.as_ptr().add(i * 8));
            let vb = _mm512_loadu_pd(b.as_ptr().add(i * 8));
            acc = _mm512_fmadd_pd(va, vb, acc);
        }
        let mut tail = 0.0;
        for i in blocks * 8..n {
            tail = a[i].mul_add(b[i], tail);
        }
        hsum8(acc) + tail
    }

    /// Safe dispatch for the mixed dot on AVX-512 CPUs.
    #[inline]
    pub(super) fn try_dot_f32(a: &[f32], b: &[f64]) -> Option<f64> {
        // SAFETY: `enabled` verified avx512f support on this CPU.
        enabled().then(|| unsafe { dot_f32(a, b) })
    }

    /// # Safety
    /// Requires avx512f (callers check [`enabled`]).
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn dot_f32(a: &[f32], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let blocks = n / 8;
        let mut acc = _mm512_setzero_pd();
        for i in 0..blocks {
            let va = load_widen8(a.as_ptr().add(i * 8));
            let vb = _mm512_loadu_pd(b.as_ptr().add(i * 8));
            acc = _mm512_fmadd_pd(va, vb, acc);
        }
        let mut tail = 0.0;
        for i in blocks * 8..n {
            tail = (a[i] as f64).mul_add(b[i], tail);
        }
        hsum8(acc) + tail
    }

    /// Safe dispatch: performs `y += α·x` and returns `true` on AVX-512
    /// CPUs, leaves `y` untouched and returns `false` otherwise.
    #[inline]
    pub(super) fn try_axpy(alpha: f64, x: &[f64], y: &mut [f64]) -> bool {
        if !enabled() {
            return false;
        }
        // SAFETY: `enabled` verified avx512f support on this CPU.
        unsafe { axpy(alpha, x, y) };
        true
    }

    /// # Safety
    /// Requires avx512f (callers check [`enabled`]).
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len().min(y.len());
        let blocks = n / 8;
        let va = _mm512_set1_pd(alpha);
        for i in 0..blocks {
            let vx = _mm512_loadu_pd(x.as_ptr().add(i * 8));
            let vy = _mm512_loadu_pd(y.as_ptr().add(i * 8));
            _mm512_storeu_pd(y.as_mut_ptr().add(i * 8), _mm512_fmadd_pd(va, vx, vy));
        }
        for i in blocks * 8..n {
            y[i] = alpha.mul_add(x[i], y[i]);
        }
    }

    /// Safe dispatch for the mixed axpy on AVX-512 CPUs.
    #[inline]
    pub(super) fn try_axpy_f32(alpha: f64, x: &[f32], y: &mut [f64]) -> bool {
        if !enabled() {
            return false;
        }
        // SAFETY: `enabled` verified avx512f support on this CPU.
        unsafe { axpy_f32(alpha, x, y) };
        true
    }

    /// # Safety
    /// Requires avx512f (callers check [`enabled`]).
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn axpy_f32(alpha: f64, x: &[f32], y: &mut [f64]) {
        let n = x.len().min(y.len());
        let blocks = n / 8;
        let va = _mm512_set1_pd(alpha);
        for i in 0..blocks {
            let vx = load_widen8(x.as_ptr().add(i * 8));
            let vy = _mm512_loadu_pd(y.as_ptr().add(i * 8));
            _mm512_storeu_pd(y.as_mut_ptr().add(i * 8), _mm512_fmadd_pd(va, vx, vy));
        }
        for i in blocks * 8..n {
            y[i] = alpha.mul_add(x[i] as f64, y[i]);
        }
    }

    /// Safe dispatch for the cached-δ divide on AVX-512 CPUs.
    #[inline]
    pub(super) fn try_div_add_nonzero(y: &mut [f64], num: &[f64], den: &[f64]) -> Option<bool> {
        // SAFETY: `enabled` verified avx512f support on this CPU.
        enabled().then(|| unsafe { div_add_nonzero(y, num, den) })
    }

    /// # Safety
    /// Requires avx512f (callers check [`enabled`]).
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn div_add_nonzero(y: &mut [f64], num: &[f64], den: &[f64]) -> bool {
        let n = num.len().min(den.len()).min(y.len());
        let blocks = n / 8;
        let zero = _mm512_setzero_pd();
        let mut zero_lanes = 0u8;
        for i in 0..blocks {
            let vn = _mm512_loadu_pd(num.as_ptr().add(i * 8));
            let vd = _mm512_loadu_pd(den.as_ptr().add(i * 8));
            let vy = _mm512_loadu_pd(y.as_ptr().add(i * 8));
            // Quotient + add everywhere, then a masked blend restores the
            // *original* y in the zero-divisor lanes — bitwise untouched,
            // exactly like the scalar branch (sign of -0.0 included).
            let mask = _mm512_cmp_pd_mask::<_CMP_EQ_OQ>(vd, zero);
            let sum = _mm512_add_pd(vy, _mm512_div_pd(vn, vd));
            zero_lanes |= mask;
            _mm512_storeu_pd(
                y.as_mut_ptr().add(i * 8),
                _mm512_mask_blend_pd(mask, sum, vy),
            );
        }
        let mut saw_zero = zero_lanes != 0;
        for i in blocks * 8..n {
            if den[i] != 0.0 {
                y[i] += num[i] / den[i];
            } else {
                saw_zero = true;
            }
        }
        saw_zero
    }

    /// Safe dispatch for the f32-numerator cached-δ divide on AVX-512.
    #[inline]
    pub(super) fn try_div_add_nonzero_f32(y: &mut [f64], num: &[f32], den: &[f64]) -> Option<bool> {
        // SAFETY: `enabled` verified avx512f support on this CPU.
        enabled().then(|| unsafe { div_add_nonzero_f32(y, num, den) })
    }

    /// # Safety
    /// Requires avx512f (callers check [`enabled`]).
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn div_add_nonzero_f32(y: &mut [f64], num: &[f32], den: &[f64]) -> bool {
        let n = num.len().min(den.len()).min(y.len());
        let blocks = n / 8;
        let zero = _mm512_setzero_pd();
        let mut zero_lanes = 0u8;
        for i in 0..blocks {
            let vn = load_widen8(num.as_ptr().add(i * 8));
            let vd = _mm512_loadu_pd(den.as_ptr().add(i * 8));
            let vy = _mm512_loadu_pd(y.as_ptr().add(i * 8));
            let mask = _mm512_cmp_pd_mask::<_CMP_EQ_OQ>(vd, zero);
            let sum = _mm512_add_pd(vy, _mm512_div_pd(vn, vd));
            zero_lanes |= mask;
            _mm512_storeu_pd(
                y.as_mut_ptr().add(i * 8),
                _mm512_mask_blend_pd(mask, sum, vy),
            );
        }
        let mut saw_zero = zero_lanes != 0;
        for i in blocks * 8..n {
            if den[i] != 0.0 {
                y[i] += num[i] as f64 / den[i];
            } else {
                saw_zero = true;
            }
        }
        saw_zero
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive_at_awkward_lengths() {
        for n in [0usize, 1, 3, 4, 5, 8, 17, 64, 101] {
            let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let got = dot(&a, &b);
            assert!((got - naive).abs() < 1e-12 * (1.0 + naive.abs()), "n={n}");
        }
    }

    #[test]
    fn axpy_matches_naive_and_leaves_suffix() {
        let x: Vec<f64> = (0..13).map(|i| i as f64 - 6.0).collect();
        let mut y: Vec<f64> = (0..15).map(|i| 0.5 * i as f64).collect();
        let mut want = y.clone();
        for i in 0..13 {
            want[i] += 2.5 * x[i];
        }
        axpy(2.5, &x, &mut y);
        for (g, w) in y.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
        assert_eq!(y[13], want[13]);
        assert_eq!(y[14], want[14]);
    }

    #[test]
    fn syr_accumulates_upper_triangle_only() {
        let delta = [1.0, -2.0, 0.0, 0.5];
        let j = 4;
        let mut b = vec![0.0; j * j];
        syr_in_place(&mut b, j, &delta);
        syr_in_place(&mut b, j, &delta);
        for j1 in 0..j {
            for j2 in 0..j {
                let want = if j2 >= j1 {
                    2.0 * delta[j1] * delta[j2]
                } else {
                    0.0 // lower triangle untouched
                };
                assert!(
                    (b[j1 * j + j2] - want).abs() < 1e-12,
                    "({j1},{j2}): {} vs {want}",
                    b[j1 * j + j2]
                );
            }
        }
    }

    /// Reference ranking: full sort by (score desc, index asc).
    fn brute_top_k(scores: &[f64], k: usize) -> Vec<(u32, f64)> {
        let mut all: Vec<(u32, f64)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u32, s))
            .collect();
        all.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn top_k_matches_full_sort_on_both_strategies() {
        // n = 64 with k = 3 exercises the insertion buffer, k = 40 the
        // full-sort path; duplicated scores exercise the index tie-break.
        let scores: Vec<f64> = (0..64).map(|i| ((i * 7) % 16) as f64 * 0.25).collect();
        let mut out = Vec::new();
        for k in [0usize, 1, 3, 15, 16, 40, 64, 200] {
            top_k_select(&scores, k, &mut out);
            assert_eq!(out, brute_top_k(&scores, k), "k={k}");
            assert_eq!(out.len(), k.min(scores.len()), "k={k}");
        }
    }

    #[test]
    fn top_k_ties_break_by_ascending_index() {
        let scores = [2.0, 5.0, 5.0, 1.0, 5.0];
        let mut out = Vec::new();
        top_k_select(&scores, 2, &mut out);
        assert_eq!(out, vec![(1, 5.0), (2, 5.0)]);
        top_k_select(&scores, 4, &mut out);
        assert_eq!(out, vec![(1, 5.0), (2, 5.0), (4, 5.0), (0, 2.0)]);
    }

    #[test]
    fn top_k_reuses_the_buffer_without_reallocating() {
        let scores: Vec<f64> = (0..256).map(|i| (i as f64 * 0.913).sin()).collect();
        let mut out = Vec::new();
        top_k_select(&scores, 8, &mut out);
        let cap = out.capacity();
        for _ in 0..10 {
            top_k_select(&scores, 8, &mut out);
        }
        assert_eq!(out.capacity(), cap, "warm buffer must not grow");
        assert_eq!(out, brute_top_k(&scores, 8));
    }

    #[test]
    fn top_k_handles_degenerate_inputs() {
        let mut out = vec![(9, 9.0)];
        top_k_select(&[], 5, &mut out);
        assert!(out.is_empty());
        top_k_select(&[3.0], 0, &mut out);
        assert!(out.is_empty());
        // NaNs rank deterministically (total_cmp: NaN > +inf on the
        // positive side), never panicking the comparator.
        let with_nan = [1.0, f64::NAN, 2.0, f64::NAN];
        top_k_select(&with_nan, 4, &mut out);
        assert_eq!(out.len(), 4);
        // NaN != NaN under `==`, so compare (index, bit pattern) pairs.
        let got: Vec<(u32, u64)> = out.iter().map(|&(i, s)| (i, s.to_bits())).collect();
        let want: Vec<(u32, u64)> = brute_top_k(&with_nan, 4)
            .iter()
            .map(|&(i, s)| (i, s.to_bits()))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let mut y = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        hadamard_in_place(&mut y, &[2.0, 0.5, -1.0, 0.0]);
        assert_eq!(y, vec![2.0, 1.0, -3.0, 0.0, 5.0]);
    }

    #[test]
    fn div_add_skips_zero_divisors_and_reports_them() {
        // Lengths straddling the 4-lane blocks, zeros in both the vector
        // body and the tail.
        for n in [1usize, 3, 4, 5, 8, 11, 16, 19] {
            let num: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 0.75).collect();
            let den: Vec<f64> = (0..n)
                .map(|i| if i % 3 == 1 { 0.0 } else { i as f64 - 4.5 })
                .collect();
            let mut y: Vec<f64> = (0..n).map(|i| 0.25 * i as f64).collect();
            let mut want = y.clone();
            let mut want_zero = false;
            for i in 0..n {
                if den[i] != 0.0 {
                    want[i] += num[i] / den[i];
                } else {
                    want_zero = true;
                }
            }
            let saw_zero = div_add_nonzero(&mut y, &num, &den);
            assert_eq!(saw_zero, want_zero, "n={n}");
            for (g, w) in y.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn div_add_all_nonzero_reports_false() {
        let mut y = vec![1.0; 6];
        let saw = div_add_nonzero(&mut y, &[2.0; 6], &[4.0; 6]);
        assert!(!saw);
        assert!(y.iter().all(|&v| v == 1.5));
    }

    #[test]
    fn div_add_leaves_zero_divisor_slots_bitwise_untouched() {
        // A zero divisor must leave y exactly as it was — even a -0.0,
        // whose sign bit an added +0.0 would flip. Covers vector-body and
        // tail lanes on both code paths.
        let mut y = vec![-0.0f64; 7];
        let num = vec![1.0; 7];
        let den = vec![0.0; 7];
        assert!(div_add_nonzero(&mut y, &num, &den));
        for v in &y {
            assert_eq!(v.to_bits(), (-0.0f64).to_bits());
        }
    }

    #[test]
    fn scalar_lanes_are_deterministic() {
        // Two calls with identical inputs are bitwise identical (the lane
        // decomposition is fixed, not data-dependent).
        let a: Vec<f64> = (0..37).map(|i| (i as f64).cos()).collect();
        let b: Vec<f64> = (0..37).map(|i| (i as f64 * 1.7).sin()).collect();
        assert_eq!(dot(&a, &b).to_bits(), dot(&a, &b).to_bits());
    }

    #[test]
    fn dot_f32_f64_matches_widened_naive_at_awkward_lengths() {
        // Lengths straddling both the 4-lane (AVX2/scalar) and 8-lane
        // (AVX-512) blocks.
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 16, 17, 64, 101] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
            let naive: f64 = a.iter().zip(&b).map(|(&x, y)| x as f64 * y).sum();
            let got = dot_f32_f64(&a, &b);
            assert!((got - naive).abs() < 1e-12 * (1.0 + naive.abs()), "n={n}");
        }
    }

    #[test]
    fn axpy_into_f64_matches_naive_and_leaves_suffix() {
        let x: Vec<f32> = (0..13).map(|i| i as f32 - 6.0).collect();
        let mut y: Vec<f64> = (0..15).map(|i| 0.5 * i as f64).collect();
        let mut want = y.clone();
        for i in 0..13 {
            want[i] += 2.5 * x[i] as f64;
        }
        axpy_into_f64(2.5, &x, &mut y);
        for (g, w) in y.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
        assert_eq!(y[13], want[13]);
        assert_eq!(y[14], want[14]);
    }

    #[test]
    fn div_add_f32_matches_scalar_bitwise_and_reports_zeros() {
        // The f32-numerator divide must agree with the scalar reference
        // bitwise on every path (widening is exact, one rounded quotient
        // per element). Lengths straddle 4- and 8-lane blocks.
        for n in [1usize, 3, 4, 5, 7, 8, 9, 11, 15, 16, 17, 19, 33] {
            let num: Vec<f32> = (0..n).map(|i| (i as f32 + 1.0) * 0.75).collect();
            let den: Vec<f64> = (0..n)
                .map(|i| if i % 3 == 1 { 0.0 } else { i as f64 - 4.5 })
                .collect();
            let mut y: Vec<f64> = (0..n).map(|i| 0.25 * i as f64).collect();
            let mut want = y.clone();
            let mut want_zero = false;
            for i in 0..n {
                if den[i] != 0.0 {
                    want[i] += num[i] as f64 / den[i];
                } else {
                    want_zero = true;
                }
            }
            let saw_zero = div_add_nonzero_f32(&mut y, &num, &den);
            assert_eq!(saw_zero, want_zero, "n={n}");
            for (g, w) in y.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn div_add_f32_leaves_zero_divisor_slots_bitwise_untouched() {
        // 11 elements: covers the 8-lane body, the 4-lane body and the
        // scalar tail on every tier.
        let mut y = vec![-0.0f64; 11];
        let num = vec![1.0f32; 11];
        let den = vec![0.0f64; 11];
        assert!(div_add_nonzero_f32(&mut y, &num, &den));
        for v in &y {
            assert_eq!(v.to_bits(), (-0.0f64).to_bits());
        }
    }

    #[test]
    fn sum_widened_matches_naive() {
        for n in [0usize, 1, 3, 4, 5, 8, 17, 64, 101] {
            let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.61).cos()).collect();
            let naive: f64 = x.iter().map(|&v| v as f64).sum();
            let got = sum_widened(&x);
            assert!((got - naive).abs() < 1e-12 * (1.0 + naive.abs()), "n={n}");
        }
    }

    #[test]
    fn widen_into_converts_exactly_and_leaves_suffix() {
        let src: Vec<f32> = (0..9).map(|i| (i as f32).exp()).collect();
        let mut dst = vec![7.0f64; 11];
        widen_into(&mut dst, &src);
        for i in 0..9 {
            assert_eq!(dst[i].to_bits(), (src[i] as f64).to_bits());
        }
        assert_eq!(dst[9], 7.0);
        assert_eq!(dst[10], 7.0);
    }

    /// The AVX-512 tier either runs (then div-add must be bitwise equal
    /// to the scalar path and dot within tolerance) or reports a clean
    /// fallback (`try_*` return `None`/`false` and the public entry
    /// points still produce scalar-path results).
    #[cfg(all(feature = "simd-avx512", target_arch = "x86_64"))]
    #[test]
    fn avx512_matches_scalar_or_falls_back_cleanly() {
        let n = 27; // 3×8-lane blocks + a 3-element tail
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.53).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).cos()).collect();
        let af: Vec<f32> = a.iter().map(|&v| v as f32).collect();
        let den: Vec<f64> = (0..n)
            .map(|i| if i % 5 == 2 { 0.0 } else { i as f64 - 9.5 })
            .collect();
        if avx512::enabled() {
            let got = avx512::try_dot(&a, &b).expect("enabled ⇒ Some");
            let want = dot_scalar(&a, &b);
            assert!((got - want).abs() < 1e-12 * (1.0 + want.abs()));

            let got = avx512::try_dot_f32(&af, &b).expect("enabled ⇒ Some");
            let want = dot_f32_f64_scalar(&af, &b);
            assert!((got - want).abs() < 1e-12 * (1.0 + want.abs()));

            let mut y_simd: Vec<f64> = (0..n).map(|i| 0.125 * i as f64).collect();
            let mut y_ref = y_simd.clone();
            let saw_simd = avx512::try_div_add_nonzero(&mut y_simd, &a, &den).expect("Some");
            let saw_ref = div_add_nonzero_scalar(&mut y_ref, &a, &den);
            assert_eq!(saw_simd, saw_ref);
            for (g, w) in y_simd.iter().zip(&y_ref) {
                assert_eq!(g.to_bits(), w.to_bits());
            }

            let mut y_simd: Vec<f64> = (0..n).map(|i| 0.125 * i as f64).collect();
            let mut y_ref = y_simd.clone();
            let saw_simd = avx512::try_div_add_nonzero_f32(&mut y_simd, &af, &den).expect("Some");
            let saw_ref = div_add_nonzero_f32_scalar(&mut y_ref, &af, &den);
            assert_eq!(saw_simd, saw_ref);
            for (g, w) in y_simd.iter().zip(&y_ref) {
                assert_eq!(g.to_bits(), w.to_bits());
            }
        } else {
            // Clean fallback: every try_* declines and leaves y untouched,
            // and the public entry points still answer via lower tiers.
            assert!(avx512::try_dot(&a, &b).is_none());
            assert!(avx512::try_dot_f32(&af, &b).is_none());
            let mut y: Vec<f64> = (0..n).map(|i| 0.125 * i as f64).collect();
            let snapshot = y.clone();
            assert!(!avx512::try_axpy(2.0, &a, &mut y));
            assert!(!avx512::try_axpy_f32(2.0, &af, &mut y));
            assert!(avx512::try_div_add_nonzero(&mut y, &a, &den).is_none());
            assert!(avx512::try_div_add_nonzero_f32(&mut y, &af, &den).is_none());
            assert_eq!(y, snapshot);
            let want = dot_scalar(&a, &b);
            assert!((dot(&a, &b) - want).abs() < 1e-12 * (1.0 + want.abs()));
        }
    }

    /// Mixed axpy on the AVX-512 tier agrees with the scalar reference to
    /// FP noise (FMA contraction) and bitwise with itself across calls.
    #[cfg(all(feature = "simd-avx512", target_arch = "x86_64"))]
    #[test]
    fn avx512_axpy_tiers_agree_with_scalar_reference() {
        if !avx512::enabled() {
            return;
        }
        let n = 21;
        let x: Vec<f64> = (0..n).map(|i| (i as f64) - 10.0).collect();
        let xf: Vec<f32> = x.iter().map(|&v| v as f32).collect();
        let base: Vec<f64> = (0..n).map(|i| 0.3 * i as f64).collect();

        let mut y = base.clone();
        assert!(avx512::try_axpy(1.75, &x, &mut y));
        let mut want = base.clone();
        axpy_scalar(1.75, &x, &mut want);
        for (g, w) in y.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12 * (1.0 + w.abs()));
        }

        let mut y = base.clone();
        assert!(avx512::try_axpy_f32(1.75, &xf, &mut y));
        let mut y2 = base.clone();
        assert!(avx512::try_axpy_f32(1.75, &xf, &mut y2));
        for (g, w) in y.iter().zip(&y2) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }
}
