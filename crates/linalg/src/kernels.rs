//! Vectorizable micro-kernel primitives for the row-update hot loops.
//!
//! These are the BLAS-1/2 fragments the δ accumulation of P-Tucker's
//! Theorem 1 decomposes into once the core walk is run-blocked:
//!
//! * [`dot`] — `Σ aᵢ·bᵢ`, the per-run δ contribution when the update mode
//!   is not the tail coordinate,
//! * [`axpy`] — `y += α·x`, the per-run δ scatter when it is (and the rows
//!   of [`syr_in_place`]),
//! * [`syr_in_place`] — the triangular rank-1 update `B += δδᵀ`,
//! * [`hadamard_in_place`] — `y *= x`, CP-ALS's whole-row δ product,
//! * [`div_add_nonzero`] — `y += num/den` with zero divisors skipped, the
//!   P-Tucker-Cache cached-δ divide (`_mm256_div_pd` with a compare/blend
//!   for the zero-divisor lanes on the SIMD path).
//!
//! [`dot`] and [`axpy`] — the primitives the hot loops spend their time
//! in — each have two implementations behind one safe entry point:
//!
//! 1. a **chunked scalar** path written as 4-lane blocks over
//!    `chunks_exact`, which LLVM autovectorizes on any target, and
//! 2. an explicit **AVX2+FMA** path (`std::arch`) compiled only under the
//!    `simd` cargo feature on x86-64, selected by cached runtime CPU
//!    detection with the scalar path as fallback.
//!
//! [`syr_in_place`] is a row loop over [`axpy`], so it inherits both
//! paths; [`hadamard_in_place`] is a plain element-wise loop (trivially
//! autovectorized, no explicit SIMD variant).
//!
//! Determinism notes: every primitive is deterministic for fixed inputs on
//! a fixed code path, and the element-wise ones ([`axpy`],
//! [`syr_in_place`], [`hadamard_in_place`]) are additionally insensitive to
//! chunk width. Across *paths* the AVX2 code uses FMA (one rounding per
//! multiply-add instead of two), so SIMD and scalar builds agree only to
//! floating-point noise — callers must compare against references with a
//! tolerance, not bitwise. [`dot`] accumulates in four lanes reduced as
//! `(l₀+l₂)+(l₁+l₃)` on both paths so the orderings match.

/// `Σ aᵢ·bᵢ` over two equal-length slices.
///
/// # Panics
/// Debug-asserts equal lengths; in release the shorter length governs.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if let Some(v) = avx2::try_dot(a, b) {
        return v;
    }
    dot_scalar(a, b)
}

/// `y ← y + α·x` element-wise over the common prefix length.
///
/// # Panics
/// Debug-asserts `x.len() <= y.len()`; extra `y` elements are untouched.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert!(x.len() <= y.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2::try_axpy(alpha, x, y) {
        return;
    }
    axpy_scalar(alpha, x, y)
}

/// Triangular rank-1 update `B ← B + δδᵀ` on the upper triangle of a
/// row-major `j×j` buffer (lower triangle untouched) — the accumulation of
/// the normal-equation matrix in Theorem 1. Rows with `δ(j₁) = 0`
/// contribute nothing and are skipped.
///
/// # Panics
/// Debug-asserts `delta.len() == j` and `b_upper.len() >= j*j`.
#[inline]
pub fn syr_in_place(b_upper: &mut [f64], j: usize, delta: &[f64]) {
    debug_assert_eq!(delta.len(), j);
    debug_assert!(b_upper.len() >= j * j);
    for j1 in 0..j {
        let d1 = delta[j1];
        if d1 == 0.0 {
            continue;
        }
        axpy(d1, &delta[j1..], &mut b_upper[j1 * j + j1..j1 * j + j]);
    }
}

/// `y ← y ⊙ x` element-wise over the common prefix length.
///
/// # Panics
/// Debug-asserts `x.len() <= y.len()`; extra `y` elements are untouched.
#[inline]
pub fn hadamard_in_place(y: &mut [f64], x: &[f64]) {
    debug_assert!(x.len() <= y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi *= xi;
    }
}

/// `y[i] += num[i] / den[i]` wherever `den[i] != 0`, skipping zero
/// divisors; returns whether any divisor was zero — the P-Tucker-Cache
/// cached-δ inner loop (Theorem 5's one-division-per-pair), whose
/// zero-divisor positions the *caller* patches with the direct-product
/// fallback (the paper's explicit caveat).
///
/// The AVX2 path (`simd` feature) does the whole quotient with
/// `_mm256_div_pd` and a compare/blend that restores the *original* `y`
/// in the lanes whose divisor is zero; the scalar path branches per
/// element. Both add exactly one rounded quotient per nonzero-divisor
/// element — and leave zero-divisor slots bitwise untouched (sign of
/// `-0.0` included) — in the same element order, so the two paths are
/// bitwise identical (division has no FMA contraction to diverge on).
///
/// # Panics
/// Debug-asserts `num.len() == den.len()` and `num.len() <= y.len()`.
#[inline]
pub fn div_add_nonzero(y: &mut [f64], num: &[f64], den: &[f64]) -> bool {
    debug_assert_eq!(num.len(), den.len());
    debug_assert!(num.len() <= y.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if let Some(saw_zero) = avx2::try_div_add_nonzero(y, num, den) {
        return saw_zero;
    }
    div_add_nonzero_scalar(y, num, den)
}

/// The scalar divide-add: per-element branch on the divisor.
#[inline]
fn div_add_nonzero_scalar(y: &mut [f64], num: &[f64], den: &[f64]) -> bool {
    let mut saw_zero = false;
    for ((yi, &n), &d) in y.iter_mut().zip(num).zip(den) {
        if d != 0.0 {
            *yi += n / d;
        } else {
            saw_zero = true;
        }
    }
    saw_zero
}

/// The autovectorizable scalar dot: four independent accumulator lanes
/// over 4-element blocks, reduced in the same `(l₀+l₂)+(l₁+l₃)` order as
/// the SIMD path's horizontal sum.
#[inline]
fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let n = a.len().min(b.len());
    let blocks = n / 4;
    for (ca, cb) in a[..blocks * 4].chunks_exact(4).zip(b.chunks_exact(4)) {
        for l in 0..4 {
            lanes[l] += ca[l] * cb[l];
        }
    }
    let mut tail = 0.0;
    for (x, y) in a[blocks * 4..n].iter().zip(&b[blocks * 4..n]) {
        tail += x * y;
    }
    (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]) + tail
}

/// The autovectorizable scalar axpy. Element-wise, so the chunk width is
/// invisible in the results.
#[inline]
fn axpy_scalar(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Explicit AVX2+FMA implementations, compiled only with `--features simd`
/// on x86-64 and entered only after runtime CPU detection.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod avx2 {
    use std::arch::x86_64::{
        __m256d, _mm256_add_pd, _mm256_blendv_pd, _mm256_castpd256_pd128, _mm256_cmp_pd,
        _mm256_div_pd, _mm256_extractf128_pd, _mm256_fmadd_pd, _mm256_loadu_pd, _mm256_movemask_pd,
        _mm256_set1_pd, _mm256_setzero_pd, _mm256_storeu_pd, _mm_add_pd, _mm_add_sd, _mm_cvtsd_f64,
        _mm_unpackhi_pd, _CMP_EQ_OQ,
    };

    /// Whether this CPU supports the AVX2+FMA path. `std` caches the
    /// detection result, so the per-call cost is one predictable load.
    #[inline]
    fn enabled() -> bool {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }

    /// Safe dispatch: `Some(Σ aᵢ·bᵢ)` on AVX2+FMA CPUs, `None` otherwise.
    #[inline]
    pub(super) fn try_dot(a: &[f64], b: &[f64]) -> Option<f64> {
        // SAFETY: `enabled` verified AVX2+FMA support on this CPU.
        enabled().then(|| unsafe { dot(a, b) })
    }

    /// Safe dispatch: performs `y += α·x` and returns `true` on AVX2+FMA
    /// CPUs, leaves `y` untouched and returns `false` otherwise.
    #[inline]
    pub(super) fn try_axpy(alpha: f64, x: &[f64], y: &mut [f64]) -> bool {
        if !enabled() {
            return false;
        }
        // SAFETY: `enabled` verified AVX2+FMA support on this CPU.
        unsafe { axpy(alpha, x, y) };
        true
    }

    /// Reduces 4 lanes as `(l₀+l₂)+(l₁+l₃)` — mirrored by `dot_scalar`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v); // l₀, l₁
        let hi = _mm256_extractf128_pd::<1>(v); // l₂, l₃
        let s = _mm_add_pd(lo, hi); // l₀+l₂, l₁+l₃
        _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
    }

    /// # Safety
    /// Requires AVX2+FMA (callers check [`enabled`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let blocks = n / 4;
        let mut acc = _mm256_setzero_pd();
        for i in 0..blocks {
            let va = _mm256_loadu_pd(a.as_ptr().add(i * 4));
            let vb = _mm256_loadu_pd(b.as_ptr().add(i * 4));
            acc = _mm256_fmadd_pd(va, vb, acc);
        }
        let mut tail = 0.0;
        for i in blocks * 4..n {
            tail = a[i].mul_add(b[i], tail);
        }
        hsum(acc) + tail
    }

    /// Safe dispatch for the cached-δ divide: performs the masked
    /// `y += num/den` and returns `Some(saw_zero)` on AVX2+FMA CPUs,
    /// leaves `y` untouched and returns `None` otherwise.
    #[inline]
    pub(super) fn try_div_add_nonzero(y: &mut [f64], num: &[f64], den: &[f64]) -> Option<bool> {
        // SAFETY: `enabled` verified AVX2+FMA support on this CPU.
        enabled().then(|| unsafe { div_add_nonzero(y, num, den) })
    }

    /// # Safety
    /// Requires AVX2+FMA (callers check [`enabled`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn div_add_nonzero(y: &mut [f64], num: &[f64], den: &[f64]) -> bool {
        let n = num.len().min(den.len()).min(y.len());
        let blocks = n / 4;
        let zero = _mm256_setzero_pd();
        let mut zero_lanes = 0i32;
        for i in 0..blocks {
            let vn = _mm256_loadu_pd(num.as_ptr().add(i * 4));
            let vd = _mm256_loadu_pd(den.as_ptr().add(i * 4));
            let vy = _mm256_loadu_pd(y.as_ptr().add(i * 4));
            // Quotient + add everywhere (0-divisor lanes produce ±inf/NaN),
            // then blend the *original* y back into those lanes — leaving
            // them untouched exactly like the scalar branch does (an added
            // +0.0 would flip a -0.0 accumulator's sign bit).
            let mask = _mm256_cmp_pd::<_CMP_EQ_OQ>(vd, zero);
            let sum = _mm256_add_pd(vy, _mm256_div_pd(vn, vd));
            zero_lanes |= _mm256_movemask_pd(mask);
            _mm256_storeu_pd(y.as_mut_ptr().add(i * 4), _mm256_blendv_pd(sum, vy, mask));
        }
        let mut saw_zero = zero_lanes != 0;
        for i in blocks * 4..n {
            if den[i] != 0.0 {
                y[i] += num[i] / den[i];
            } else {
                saw_zero = true;
            }
        }
        saw_zero
    }

    /// # Safety
    /// Requires AVX2+FMA (callers check [`enabled`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len().min(y.len());
        let blocks = n / 4;
        let va = _mm256_set1_pd(alpha);
        for i in 0..blocks {
            let vx = _mm256_loadu_pd(x.as_ptr().add(i * 4));
            let vy = _mm256_loadu_pd(y.as_ptr().add(i * 4));
            _mm256_storeu_pd(y.as_mut_ptr().add(i * 4), _mm256_fmadd_pd(va, vx, vy));
        }
        for i in blocks * 4..n {
            y[i] = alpha.mul_add(x[i], y[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive_at_awkward_lengths() {
        for n in [0usize, 1, 3, 4, 5, 8, 17, 64, 101] {
            let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let got = dot(&a, &b);
            assert!((got - naive).abs() < 1e-12 * (1.0 + naive.abs()), "n={n}");
        }
    }

    #[test]
    fn axpy_matches_naive_and_leaves_suffix() {
        let x: Vec<f64> = (0..13).map(|i| i as f64 - 6.0).collect();
        let mut y: Vec<f64> = (0..15).map(|i| 0.5 * i as f64).collect();
        let mut want = y.clone();
        for i in 0..13 {
            want[i] += 2.5 * x[i];
        }
        axpy(2.5, &x, &mut y);
        for (g, w) in y.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
        assert_eq!(y[13], want[13]);
        assert_eq!(y[14], want[14]);
    }

    #[test]
    fn syr_accumulates_upper_triangle_only() {
        let delta = [1.0, -2.0, 0.0, 0.5];
        let j = 4;
        let mut b = vec![0.0; j * j];
        syr_in_place(&mut b, j, &delta);
        syr_in_place(&mut b, j, &delta);
        for j1 in 0..j {
            for j2 in 0..j {
                let want = if j2 >= j1 {
                    2.0 * delta[j1] * delta[j2]
                } else {
                    0.0 // lower triangle untouched
                };
                assert!(
                    (b[j1 * j + j2] - want).abs() < 1e-12,
                    "({j1},{j2}): {} vs {want}",
                    b[j1 * j + j2]
                );
            }
        }
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let mut y = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        hadamard_in_place(&mut y, &[2.0, 0.5, -1.0, 0.0]);
        assert_eq!(y, vec![2.0, 1.0, -3.0, 0.0, 5.0]);
    }

    #[test]
    fn div_add_skips_zero_divisors_and_reports_them() {
        // Lengths straddling the 4-lane blocks, zeros in both the vector
        // body and the tail.
        for n in [1usize, 3, 4, 5, 8, 11, 16, 19] {
            let num: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 0.75).collect();
            let den: Vec<f64> = (0..n)
                .map(|i| if i % 3 == 1 { 0.0 } else { i as f64 - 4.5 })
                .collect();
            let mut y: Vec<f64> = (0..n).map(|i| 0.25 * i as f64).collect();
            let mut want = y.clone();
            let mut want_zero = false;
            for i in 0..n {
                if den[i] != 0.0 {
                    want[i] += num[i] / den[i];
                } else {
                    want_zero = true;
                }
            }
            let saw_zero = div_add_nonzero(&mut y, &num, &den);
            assert_eq!(saw_zero, want_zero, "n={n}");
            for (g, w) in y.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn div_add_all_nonzero_reports_false() {
        let mut y = vec![1.0; 6];
        let saw = div_add_nonzero(&mut y, &[2.0; 6], &[4.0; 6]);
        assert!(!saw);
        assert!(y.iter().all(|&v| v == 1.5));
    }

    #[test]
    fn div_add_leaves_zero_divisor_slots_bitwise_untouched() {
        // A zero divisor must leave y exactly as it was — even a -0.0,
        // whose sign bit an added +0.0 would flip. Covers vector-body and
        // tail lanes on both code paths.
        let mut y = vec![-0.0f64; 7];
        let num = vec![1.0; 7];
        let den = vec![0.0; 7];
        assert!(div_add_nonzero(&mut y, &num, &den));
        for v in &y {
            assert_eq!(v.to_bits(), (-0.0f64).to_bits());
        }
    }

    #[test]
    fn scalar_lanes_are_deterministic() {
        // Two calls with identical inputs are bitwise identical (the lane
        // decomposition is fixed, not data-dependent).
        let a: Vec<f64> = (0..37).map(|i| (i as f64).cos()).collect();
        let b: Vec<f64> = (0..37).map(|i| (i as f64 * 1.7).sin()).collect();
        assert_eq!(dot(&a, &b).to_bits(), dot(&a, &b).to_bits());
    }
}
