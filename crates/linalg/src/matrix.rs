use crate::{LinalgError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major, `f64` matrix.
///
/// This is deliberately minimal: the P-Tucker algorithms only need small
/// dense matrices (`Jₙ×Jₙ` normal-equation matrices, `Iₙ×Jₙ` factor blocks,
/// and `J^{N-1}` Gram matrices for the HOOI baselines). Storage is a single
/// contiguous `Vec<f64>` to keep the hot row-update kernel cache-friendly.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    /// Returns [`LinalgError::InvalidArgument`] if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument(
                "data length does not match rows*cols",
            ));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of row slices. All rows must have equal
    /// length; panics otherwise (intended for literals in tests/examples).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The matrix shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        debug_assert!(c < self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix–matrix product `self * rhs`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: streams through `rhs` rows, cache-friendly for
        // row-major storage.
        for i in 0..self.rows {
            let out_row = i * rhs.cols;
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = k * rhs.cols;
                for j in 0..rhs.cols {
                    out.data[out_row + j] += a * rhs.data[rhs_row + j];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * x`. Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *o = acc;
        }
        out
    }

    /// Vector–matrix product `xᵀ * self` (a row vector times the matrix).
    /// Panics if `x.len() != self.rows()`.
    pub fn vecmat(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "vecmat dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (o, &m) in out.iter_mut().zip(self.row(r)) {
                *o += xr * m;
            }
        }
        out
    }

    /// The Gram matrix `selfᵀ * self` (always square `cols × cols`).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g.data[i * self.cols + j] += ri * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..self.cols {
            for j in 0..i {
                g.data[i * self.cols + j] = g.data[j * self.cols + i];
            }
        }
        g
    }

    /// Elementwise sum `self + rhs`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] on shape disagreement.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Elementwise difference `self - rhs`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] on shape disagreement.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Scales every entry by `s`, in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Adds `s` to every diagonal entry, in place (used for `B + λI`).
    pub fn add_diagonal_mut(&mut self, s: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self.data[i * self.cols + i] += s;
        }
    }

    /// Frobenius norm `sqrt(Σ aᵢⱼ²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (infinity "norm" over entries).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// True if all entries are finite (no NaN/±inf).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// True if the matrix is symmetric up to absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Cholesky factorization of `self` (see [`crate::Cholesky`]).
    ///
    /// # Errors
    /// Returns [`LinalgError::NotPositiveDefinite`] if `self` is not SPD, or
    /// [`LinalgError::InvalidArgument`] if it is not square.
    pub fn cholesky(&self) -> Result<crate::Cholesky> {
        crate::Cholesky::factor(self)
    }

    /// LU factorization with partial pivoting (see [`crate::Lu`]).
    ///
    /// # Errors
    /// Returns [`LinalgError::Singular`] for singular matrices, or
    /// [`LinalgError::InvalidArgument`] if it is not square.
    pub fn lu(&self) -> Result<crate::Lu> {
        crate::Lu::factor(self)
    }

    /// Thin Householder QR factorization (see [`crate::Qr`]).
    ///
    /// # Errors
    /// Returns [`LinalgError::InvalidArgument`] if `rows < cols`.
    pub fn qr(&self) -> Result<crate::Qr> {
        crate::Qr::factor(self)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matvec_and_vecmat() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(a.vecmat(&[1.0, 1.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        let expl = a.transpose().matmul(&a).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - expl[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn add_sub_scale_diag() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::identity(2);
        let s = a.add(&b).unwrap();
        assert_eq!(s[(0, 0)], 2.0);
        let d = s.sub(&b).unwrap();
        assert_eq!(d, a);
        let mut c = a.clone();
        c.scale_mut(2.0);
        assert_eq!(c[(1, 1)], 8.0);
        let mut e = a;
        e.add_diagonal_mut(0.5);
        assert_eq!(e[(0, 0)], 1.5);
        assert_eq!(e[(1, 1)], 4.5);
        assert_eq!(e[(0, 1)], 2.0);
    }

    #[test]
    fn norms_and_predicates() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
        assert!(a.is_finite());
        assert!(a.is_symmetric(0.0));
        let ns = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(!ns.is_symmetric(0.5));
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }
}
