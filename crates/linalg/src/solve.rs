//! Allocation-free in-place solvers for small dense systems.
//!
//! P-Tucker's row update solves a `Jₙ×Jₙ` system **for every row of every
//! factor matrix of every iteration** — millions of solves on real tensors.
//! The [`crate::Cholesky`]/[`crate::Lu`] wrapper types allocate their factor
//! storage and return fresh `Vec`s, which is fine for one-off solves but
//! ruinous in that loop. The functions here are the allocation-free core:
//! they factor **in place** in a caller-provided buffer and overwrite the
//! right-hand side with the solution, so a per-thread scratch arena can be
//! reused across all rows (see `ptucker::engine::Scratch`).
//!
//! The wrapper types are implemented on top of these routines, so both APIs
//! share one numerical definition.

use crate::{LinalgError, Result};

/// Cholesky-factors the SPD matrix `a` (`n×n`, row-major, full storage) in
/// place: on success the lower triangle (diagonal included) holds `L` with
/// `A = L·Lᵀ`; the strict upper triangle is left untouched.
///
/// # Errors
/// [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive or
/// non-finite (`a` is then partially overwritten).
///
/// # Panics
/// Panics if `a.len() != n * n`.
pub fn cholesky_factor_in_place(a: &mut [f64], n: usize) -> Result<()> {
    assert_eq!(a.len(), n * n, "cholesky buffer must be n*n");
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= a[i * n + k] * a[j * n + k];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite { pivot: i });
                }
                a[i * n + i] = sum.sqrt();
            } else {
                a[i * n + j] = sum / a[j * n + j];
            }
        }
    }
    Ok(())
}

/// Solves `L·Lᵀ x = rhs` in place given a factored lower triangle `l` (as
/// produced by [`cholesky_factor_in_place`]; entries above the diagonal are
/// ignored). `rhs` is overwritten with the solution.
///
/// # Panics
/// Panics if `l.len() != n * n` or `rhs.len() != n`.
pub fn cholesky_solve_factored(l: &[f64], n: usize, rhs: &mut [f64]) {
    assert_eq!(l.len(), n * n, "cholesky buffer must be n*n");
    assert_eq!(rhs.len(), n, "cholesky solve dimension mismatch");
    // Forward: L y = b (y overwrites rhs).
    for i in 0..n {
        let mut sum = rhs[i];
        for k in 0..i {
            sum -= l[i * n + k] * rhs[k];
        }
        rhs[i] = sum / l[i * n + i];
    }
    // Backward: Lᵀ x = y (x overwrites rhs).
    for i in (0..n).rev() {
        let mut sum = rhs[i];
        for k in (i + 1)..n {
            sum -= l[k * n + i] * rhs[k];
        }
        rhs[i] = sum / l[i * n + i];
    }
}

/// Factors and solves the SPD system `a x = rhs` entirely in place:
/// `a` is destroyed (overwritten with `L`), `rhs` is overwritten with the
/// solution. Performs **zero heap allocations**.
///
/// # Errors
/// [`LinalgError::NotPositiveDefinite`] if `a` is not SPD; `rhs` is left
/// untouched in that case (only `a` is clobbered).
///
/// # Panics
/// Panics if `a.len() != n * n` or `rhs.len() != n`.
pub fn cholesky_solve_in_place(a: &mut [f64], n: usize, rhs: &mut [f64]) -> Result<()> {
    assert_eq!(rhs.len(), n, "cholesky solve dimension mismatch");
    cholesky_factor_in_place(a, n)?;
    cholesky_solve_factored(a, n, rhs);
    Ok(())
}

/// LU-factors the square matrix `a` (`n×n`, row-major) in place with partial
/// pivoting. On success `a` packs unit-`L` below the diagonal and `U` on and
/// above it, and `pivots[k]` records the row swapped with row `k` at step
/// `k` (LAPACK `ipiv` convention, 0-based) — apply the same swap sequence to
/// a right-hand side before substitution.
///
/// # Errors
/// [`LinalgError::Singular`] if a pivot column is exactly zero or
/// non-finite.
///
/// # Panics
/// Panics if `a.len() != n * n` or `pivots.len() < n`.
pub fn lu_factor_in_place(a: &mut [f64], n: usize, pivots: &mut [usize]) -> Result<()> {
    assert_eq!(a.len(), n * n, "lu buffer must be n*n");
    assert!(pivots.len() >= n, "pivot buffer must hold n entries");
    for k in 0..n {
        // Pivot: largest |entry| in column k at or below the diagonal.
        let mut p = k;
        let mut max = a[k * n + k].abs();
        for i in (k + 1)..n {
            let v = a[i * n + k].abs();
            if v > max {
                max = v;
                p = i;
            }
        }
        if max == 0.0 || !max.is_finite() {
            return Err(LinalgError::Singular { pivot: k });
        }
        pivots[k] = p;
        if p != k {
            for c in 0..n {
                a.swap(k * n + c, p * n + c);
            }
        }
        let pivot = a[k * n + k];
        for i in (k + 1)..n {
            let factor = a[i * n + k] / pivot;
            a[i * n + k] = factor;
            for j in (k + 1)..n {
                let sub = factor * a[k * n + j];
                a[i * n + j] -= sub;
            }
        }
    }
    Ok(())
}

/// Solves `A x = rhs` in place given factors packed by
/// [`lu_factor_in_place`]. `rhs` is overwritten with the solution.
///
/// # Panics
/// Panics if `lu.len() != n * n`, `pivots.len() < n` or `rhs.len() != n`.
pub fn lu_solve_factored(lu: &[f64], n: usize, pivots: &[usize], rhs: &mut [f64]) {
    assert_eq!(lu.len(), n * n, "lu buffer must be n*n");
    assert!(pivots.len() >= n, "pivot buffer must hold n entries");
    assert_eq!(rhs.len(), n, "lu solve dimension mismatch");
    // Apply the pivot swap sequence: rhs ← P b.
    for k in 0..n {
        rhs.swap(k, pivots[k]);
    }
    // Forward-substitute unit-L.
    for i in 1..n {
        let mut sum = rhs[i];
        for k in 0..i {
            sum -= lu[i * n + k] * rhs[k];
        }
        rhs[i] = sum;
    }
    // Back-substitute U.
    for i in (0..n).rev() {
        let mut sum = rhs[i];
        for k in (i + 1)..n {
            sum -= lu[i * n + k] * rhs[k];
        }
        rhs[i] = sum / lu[i * n + i];
    }
}

/// Factors and solves the general square system `a x = rhs` entirely in
/// place with partial pivoting: `a` is destroyed, `pivots` is scratch for
/// the swap sequence, `rhs` is overwritten with the solution. Performs
/// **zero heap allocations**.
///
/// # Errors
/// [`LinalgError::Singular`] for (numerically) singular `a`; `rhs` is left
/// untouched in that case.
///
/// # Panics
/// Panics if buffer lengths are inconsistent with `n`.
pub fn lu_solve_in_place(
    a: &mut [f64],
    n: usize,
    pivots: &mut [usize],
    rhs: &mut [f64],
) -> Result<()> {
    assert_eq!(rhs.len(), n, "lu solve dimension mismatch");
    lu_factor_in_place(a, n, pivots)?;
    lu_solve_factored(a, n, pivots, rhs);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn spd3() -> Vec<f64> {
        vec![4.0, 2.0, 0.6, 2.0, 5.0, 1.0, 0.6, 1.0, 3.0]
    }

    #[test]
    fn cholesky_in_place_matches_wrapper() {
        let a = Matrix::from_vec(3, 3, spd3()).unwrap();
        let b = [1.0, -2.0, 0.5];
        let want = a.cholesky().unwrap().solve(&b);
        let mut buf = spd3();
        let mut rhs = b.to_vec();
        cholesky_solve_in_place(&mut buf, 3, &mut rhs).unwrap();
        for (got, want) in rhs.iter().zip(&want) {
            assert!((got - want).abs() < 1e-14, "{got} vs {want}");
        }
    }

    #[test]
    fn cholesky_in_place_rejects_non_spd_and_preserves_rhs() {
        let mut buf = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        let mut rhs = vec![5.0, 7.0];
        assert!(cholesky_solve_in_place(&mut buf, 2, &mut rhs).is_err());
        assert_eq!(rhs, vec![5.0, 7.0]);
    }

    #[test]
    fn lu_in_place_solves_with_pivoting() {
        // Requires a row swap at step 0.
        let a = vec![0.0, 2.0, 1.0, 1.0, -2.0, -3.0, -1.0, 1.0, 2.0];
        let m = Matrix::from_vec(3, 3, a.clone()).unwrap();
        let b = [-8.0, 0.0, 3.0];
        let mut buf = a;
        let mut pivots = [0usize; 3];
        let mut rhs = b.to_vec();
        lu_solve_in_place(&mut buf, 3, &mut pivots, &mut rhs).unwrap();
        let r = m.matvec(&rhs);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn lu_in_place_detects_singular_and_preserves_rhs() {
        let mut buf = vec![1.0, 2.0, 2.0, 4.0];
        let mut pivots = [0usize; 2];
        let mut rhs = vec![1.0, 1.0];
        assert!(lu_solve_in_place(&mut buf, 2, &mut pivots, &mut rhs).is_err());
        assert_eq!(rhs, vec![1.0, 1.0]);
    }

    #[test]
    fn in_place_buffers_are_reusable_across_systems() {
        // The whole point: one scratch, many solves.
        let mut buf = vec![0.0; 9];
        let mut pivots = [0usize; 3];
        let mut rhs = vec![0.0; 3];
        for scale in [1.0, 2.0, 5.0] {
            buf.copy_from_slice(&spd3());
            for v in buf.iter_mut() {
                *v *= scale;
            }
            rhs.copy_from_slice(&[scale, -scale, 0.5 * scale]);
            cholesky_solve_in_place(&mut buf, 3, &mut rhs).unwrap();
            let a = Matrix::from_vec(3, 3, spd3().iter().map(|v| v * scale).collect()).unwrap();
            let r = a.matvec(&rhs);
            assert!((r[0] - scale).abs() < 1e-12);
            // And the same buffers drive an LU solve next.
            buf.copy_from_slice(&spd3());
            rhs.copy_from_slice(&[1.0, 0.0, 0.0]);
            lu_solve_in_place(&mut buf, 3, &mut pivots, &mut rhs).unwrap();
        }
    }

    #[test]
    fn one_by_one_systems() {
        let mut buf = vec![4.0];
        let mut rhs = vec![8.0];
        cholesky_solve_in_place(&mut buf, 1, &mut rhs).unwrap();
        assert!((rhs[0] - 2.0).abs() < 1e-15);
        let mut buf = vec![-4.0];
        let mut pivots = [0usize; 1];
        let mut rhs = vec![8.0];
        lu_solve_in_place(&mut buf, 1, &mut pivots, &mut rhs).unwrap();
        assert!((rhs[0] + 2.0).abs() < 1e-15);
    }
}
