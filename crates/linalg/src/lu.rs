use crate::{LinalgError, Matrix, Result};

/// LU factorization with partial pivoting: `P A = L U`.
///
/// Used as the general-purpose fallback solver/inverse where the matrix is
/// square but not guaranteed SPD (e.g. the upper-triangular `R⁽ⁿ⁾` blocks
/// from QR when propagating `G ← G ×ₙ R⁽ⁿ⁾` need no inverse, but diagnostics
/// and tests do, and the paper's literal "inverse matrix" ablation uses it).
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed LU factors: `U` on and above the diagonal, unit-`L` below.
    lu: Matrix,
    /// Pivot swap sequence: row `k` was swapped with row `pivots[k]` at
    /// step `k` (LAPACK `ipiv` convention, 0-based).
    pivots: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), for determinants.
    sign: f64,
}

impl Lu {
    /// Factors a square matrix with partial pivoting.
    ///
    /// # Errors
    /// * [`LinalgError::InvalidArgument`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a pivot is (numerically) zero.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(LinalgError::InvalidArgument("lu requires a square matrix"));
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut pivots = vec![0usize; n];
        crate::solve::lu_factor_in_place(lu.as_mut_slice(), n, &mut pivots)?;
        let sign = pivots
            .iter()
            .enumerate()
            .fold(1.0, |s, (k, &p)| if p != k { -s } else { s });
        Ok(Lu { lu, pivots, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` (one allocation for the returned solution; see
    /// [`crate::solve::lu_solve_factored`] for the allocation-free form).
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "lu solve dimension mismatch");
        let mut x = b.to_vec();
        crate::solve::lu_solve_factored(self.lu.as_slice(), n, &self.pivots, &mut x);
        x
    }

    /// The explicit inverse `A⁻¹`.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut out = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let x = self.solve(&e);
            e[c] = 0.0;
            for r in 0..n {
                out[(r, c)] = x[r];
            }
        }
        out
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let n = self.dim();
        let mut d = self.sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_general_system() {
        let a = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, -2.0, -3.0], &[-1.0, 1.0, 2.0]]);
        let lu = a.lu().unwrap();
        let b = [-8.0, 0.0, 3.0];
        let x = lu.solve(&b);
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let inv = a.lu().unwrap().inverse();
        let eye = a.matmul(&inv).unwrap();
        assert!((eye[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((eye[(0, 1)]).abs() < 1e-12);
        assert!((eye[(1, 0)]).abs() < 1e-12);
        assert!((eye[(1, 1)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn det_with_pivoting() {
        // Requires a row swap; det = -2.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[2.0, 0.0]]);
        let lu = a.lu().unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn non_square_rejected() {
        assert!(Lu::factor(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn agrees_with_cholesky_on_spd() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let b = [5.0, -1.0];
        let x_lu = a.lu().unwrap().solve(&b);
        let x_ch = a.cholesky().unwrap().solve(&b);
        for (u, c) in x_lu.iter().zip(&x_ch) {
            assert!((u - c).abs() < 1e-12);
        }
    }
}
