use std::fmt;

/// Errors produced by the dense linear-algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the offending operation.
        op: &'static str,
        /// Shape of the left-hand operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right-hand operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// Cholesky factorization failed: the matrix is not positive definite.
    NotPositiveDefinite {
        /// Index of the pivot at which factorization broke down.
        pivot: usize,
    },
    /// LU factorization hit an (almost) exactly singular pivot.
    Singular {
        /// Index of the zero pivot.
        pivot: usize,
    },
    /// An iterative algorithm failed to converge within its sweep budget.
    NoConvergence {
        /// The algorithm that failed (e.g. "jacobi eigen").
        algorithm: &'static str,
        /// Number of sweeps/iterations performed before giving up.
        iterations: usize,
    },
    /// An argument was out of range (e.g. requesting more singular vectors
    /// than columns).
    InvalidArgument(&'static str),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at {pivot})")
            }
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}
