use crate::{sym_eigen, LinalgError, Matrix, Result};

/// Result of a Gram-matrix-based thin SVD (see
/// [`leading_left_singular_vectors`]).
#[derive(Debug, Clone)]
pub struct GramSvd {
    /// The requested leading left singular vectors, one per column.
    pub u: Matrix,
    /// The corresponding singular values, descending.
    pub singular_values: Vec<f64>,
}

/// Computes the `k` leading **left** singular vectors of a (typically tall)
/// matrix `Y ∈ R^{m×n}` via the Gram matrix `YᵀY`.
///
/// This is the kernel of every HOOI-style Tucker baseline (Algorithm 1,
/// line 5): `A⁽ⁿ⁾ ← Jₙ leading left singular vectors of Y₍ₙ₎`. The Gram trick
/// avoids forming an `m×m` problem: eigendecompose `YᵀY = V Σ² Vᵀ` (an `n×n`
/// symmetric problem), then recover `uᵢ = Y vᵢ / σᵢ`.
///
/// For P-Tucker's experimental settings `n = Π_{m≠n} Jₘ` is small (≤ ~10³),
/// matching the memory profile the paper ascribes to these baselines — the
/// *input* `Y` is the part that explodes (`O(Iₙ · J^{N-1})`), not the Gram
/// matrix.
///
/// Singular directions whose singular value is numerically zero (below
/// `1e-12 · σ_max`) cannot be recovered from the Gram matrix; they are padded
/// with zero columns so the output always has exactly `k` columns. Rank
/// deficiency of that severity does not arise in the factorization loops
/// (random initialization keeps the iterates generic), but the padding keeps
/// the function total.
///
/// # Errors
/// * [`LinalgError::InvalidArgument`] if `k > min(m, n)` or `k == 0`.
/// * Propagates eigensolver failures.
pub fn leading_left_singular_vectors(y: &Matrix, k: usize) -> Result<GramSvd> {
    let (m, n) = y.shape();
    if k == 0 || k > m.min(n) {
        return Err(LinalgError::InvalidArgument(
            "k must satisfy 1 <= k <= min(rows, cols)",
        ));
    }
    if m <= n {
        // Wide (or square) input: eigendecompose the m×m left Gram matrix
        // Y·Yᵀ, whose eigenvectors *are* the left singular vectors. This is
        // the cheap side for HOOI on high-order tensors, where
        // `n = J^{N-1}` dwarfs `m = Iₙ`.
        let left_gram = y.matmul(&y.transpose())?;
        let eig = sym_eigen(&left_gram)?;
        let mut u = Matrix::zeros(m, k);
        let mut singular_values = Vec::with_capacity(k);
        for j in 0..k {
            singular_values.push(eig.values[j].max(0.0).sqrt());
            for i in 0..m {
                u[(i, j)] = eig.vectors[(i, j)];
            }
        }
        return Ok(GramSvd { u, singular_values });
    }

    let gram = y.gram(); // n×n right Gram
    let eig = sym_eigen(&gram)?;
    let sigma_max = eig.values.first().copied().unwrap_or(0.0).max(0.0).sqrt();
    let cutoff = 1e-12 * sigma_max;

    let mut u = Matrix::zeros(m, k);
    let mut singular_values = Vec::with_capacity(k);
    for j in 0..k {
        let lambda = eig.values[j].max(0.0);
        let sigma = lambda.sqrt();
        singular_values.push(sigma);
        if sigma <= cutoff {
            continue; // leave a zero column
        }
        let vj = eig.vectors.col(j);
        let uj = y.matvec(&vj);
        for i in 0..m {
            u[(i, j)] = uj[i] / sigma;
        }
    }
    Ok(GramSvd { u, singular_values })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_singular_values() {
        // Y = diag(3, 2) padded to 3x2: singular values 3, 2.
        let y = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0], &[0.0, 0.0]]);
        let svd = leading_left_singular_vectors(&y, 2).unwrap();
        assert!((svd.singular_values[0] - 3.0).abs() < 1e-10);
        assert!((svd.singular_values[1] - 2.0).abs() < 1e-10);
        // u1 = e1, u2 = e2 (up to sign).
        assert!((svd.u[(0, 0)].abs() - 1.0).abs() < 1e-10);
        assert!((svd.u[(1, 1)].abs() - 1.0).abs() < 1e-10);
        assert!(svd.u[(2, 0)].abs() < 1e-10);
    }

    #[test]
    fn left_vectors_orthonormal() {
        let y = Matrix::from_rows(&[
            &[1.0, 2.0, 0.5],
            &[-1.0, 0.3, 2.0],
            &[0.7, 1.1, -0.2],
            &[2.2, -0.4, 1.0],
            &[0.1, 0.9, 0.9],
        ]);
        let svd = leading_left_singular_vectors(&y, 3).unwrap();
        let g = svd.u.gram();
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - want).abs() < 1e-9, "g[{i}{j}]={}", g[(i, j)]);
            }
        }
        // Descending singular values.
        assert!(svd.singular_values[0] >= svd.singular_values[1]);
        assert!(svd.singular_values[1] >= svd.singular_values[2]);
    }

    #[test]
    fn rank_one_recovery() {
        // Y = 5 * u vᵀ with u, v unit vectors.
        let u = [0.6, 0.8];
        let v = [3.0_f64.sqrt() / 2.0, 0.5];
        let mut y = Matrix::zeros(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                y[(i, j)] = 5.0 * u[i] * v[j];
            }
        }
        let svd = leading_left_singular_vectors(&y, 1).unwrap();
        assert!((svd.singular_values[0] - 5.0).abs() < 1e-10);
        let got = svd.u.col(0);
        let sign = if got[0] * u[0] >= 0.0 { 1.0 } else { -1.0 };
        assert!((got[0] - sign * u[0]).abs() < 1e-10);
        assert!((got[1] - sign * u[1]).abs() < 1e-10);
    }

    #[test]
    fn projection_captures_energy() {
        // Best rank-1 approximation error equals the discarded singular value.
        let y = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let svd = leading_left_singular_vectors(&y, 1).unwrap();
        // P = u uᵀ; ||Y - P Y||_F should be 1 (the second singular value).
        let u = svd.u.col(0);
        let mut resid = 0.0;
        for i in 0..2 {
            for j in 0..2 {
                let mut p = 0.0;
                for l in 0..2 {
                    p += u[i] * u[l] * y[(l, j)];
                }
                let d = y[(i, j)] - p;
                resid += d * d;
            }
        }
        assert!((resid.sqrt() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn wide_matrix_uses_left_gram_path() {
        // 2x5 wide matrix: left singular vectors must still be orthonormal
        // and reproduce the best rank-k projection.
        let y = Matrix::from_rows(&[&[1.0, 0.5, -0.2, 2.0, 0.0], &[0.3, -1.0, 0.8, 0.1, 1.5]]);
        let svd = leading_left_singular_vectors(&y, 2).unwrap();
        let g = svd.u.gram();
        for i in 0..2 {
            for j in 0..2 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - want).abs() < 1e-9);
            }
        }
        // Full-rank k=2 on a 2-row matrix: U Uᵀ Y == Y.
        let proj = svd
            .u
            .matmul(&svd.u.transpose())
            .unwrap()
            .matmul(&y)
            .unwrap();
        for (a, b) in proj.as_slice().iter().zip(y.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
        // Cross-check singular values against the tall path on Yᵀ.
        let tall = leading_left_singular_vectors(&y.transpose(), 2).unwrap();
        for (a, b) in svd.singular_values.iter().zip(&tall.singular_values) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_k_rejected() {
        let y = Matrix::zeros(3, 2);
        assert!(leading_left_singular_vectors(&y, 0).is_err());
        assert!(leading_left_singular_vectors(&y, 3).is_err());
    }

    #[test]
    fn zero_matrix_pads_with_zero_columns() {
        let y = Matrix::zeros(4, 3);
        let svd = leading_left_singular_vectors(&y, 2).unwrap();
        assert_eq!(svd.u.shape(), (4, 2));
        assert!(svd.u.as_slice().iter().all(|&v| v == 0.0));
        assert!(svd.singular_values.iter().all(|&s| s == 0.0));
    }
}
