use crate::{LinalgError, Matrix, Result};

/// Eigendecomposition of a symmetric matrix: `A = V Λ Vᵀ`.
///
/// Produced by [`sym_eigen`]; eigenpairs are sorted by **descending**
/// eigenvalue, matching the "leading singular vectors" convention the HOOI
/// baselines need.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Column `k` of this matrix is the eigenvector for `values[k]`.
    pub vectors: Matrix,
}

/// Computes all eigenpairs of a symmetric matrix with the cyclic Jacobi
/// method.
///
/// Jacobi is quadratically convergent and unconditionally stable for
/// symmetric input, which is exactly the Gram-matrix use case of the Tucker
/// baselines (`YᵀY` with `Y` the matricized TTMc output). Matrix sizes there
/// are `J^{N-1} × J^{N-1}` — at the paper's settings at most ~10³ — well
/// within Jacobi's comfortable range.
///
/// # Errors
/// * [`LinalgError::InvalidArgument`] if `a` is not square or not symmetric
///   (tolerance `1e-8 · max|aᵢⱼ|`).
/// * [`LinalgError::NoConvergence`] if off-diagonal mass fails to vanish
///   within 100 sweeps (does not occur for well-formed symmetric input).
pub fn sym_eigen(a: &Matrix) -> Result<SymEigen> {
    if a.rows() != a.cols() {
        return Err(LinalgError::InvalidArgument(
            "eigendecomposition requires a square matrix",
        ));
    }
    let tol_sym = 1e-8 * a.max_abs().max(1.0);
    if !a.is_symmetric(tol_sym) {
        return Err(LinalgError::InvalidArgument(
            "eigendecomposition requires a symmetric matrix",
        ));
    }
    let n = a.rows();
    let mut m = a.clone();
    // Symmetrize exactly to stop tiny asymmetries from drifting.
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = 0.5 * (m[(i, j)] + m[(j, i)]);
            m[(i, j)] = avg;
            m[(j, i)] = avg;
        }
    }
    let mut v = Matrix::identity(n);

    const MAX_SWEEPS: usize = 100;
    let eps = 1e-14 * m.frobenius_norm().max(1.0);

    for _sweep in 0..MAX_SWEEPS {
        // Off-diagonal Frobenius mass.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= eps {
            return Ok(finish(m, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= eps / (n as f64) {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Classic Jacobi rotation.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Update rows/columns p and q of the symmetric matrix.
                for k in 0..n {
                    if k != p && k != q {
                        let akp = m[(k, p)];
                        let akq = m[(k, q)];
                        let new_kp = c * akp - s * akq;
                        let new_kq = s * akp + c * akq;
                        m[(k, p)] = new_kp;
                        m[(p, k)] = new_kp;
                        m[(k, q)] = new_kq;
                        m[(q, k)] = new_kq;
                    }
                }
                let new_pp = app - t * apq;
                let new_qq = aqq + t * apq;
                m[(p, p)] = new_pp;
                m[(q, q)] = new_qq;
                m[(p, q)] = 0.0;
                m[(q, p)] = 0.0;

                // Accumulate the rotation into V.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(LinalgError::NoConvergence {
        algorithm: "jacobi eigen",
        iterations: MAX_SWEEPS,
    })
}

fn finish(m: Matrix, v: Matrix) -> SymEigen {
    let n = m.rows();
    let mut idx: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    idx.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).expect("finite eigenvalues"));
    let values: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in idx.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    SymEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigen() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 7.0]]);
        let e = sym_eigen(&a).unwrap();
        assert!((e.values[0] - 7.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = sym_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10 || (v0[0] + v0[1]).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.0], &[-2.0, 0.0, 3.0]]);
        let e = sym_eigen(&a).unwrap();
        // V Λ Vᵀ == A
        let mut lam = Matrix::zeros(3, 3);
        for i in 0..3 {
            lam[(i, i)] = e.values[i];
        }
        let rec = e
            .vectors
            .matmul(&lam)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
        // VᵀV == I
        let g = e.vectors.gram();
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn eigenvalues_descending() {
        let a = Matrix::from_rows(&[&[1.0, 0.5, 0.0], &[0.5, 5.0, 0.1], &[0.0, 0.1, 2.5]]);
        let e = sym_eigen(&a).unwrap();
        assert!(e.values[0] >= e.values[1] && e.values[1] >= e.values[2]);
    }

    #[test]
    fn trace_preserved() {
        let a = Matrix::from_rows(&[&[2.0, -1.0], &[-1.0, 2.0]]);
        let e = sym_eigen(&a).unwrap();
        let trace = 4.0;
        assert!((e.values.iter().sum::<f64>() - trace).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(sym_eigen(&a).is_err());
    }

    #[test]
    fn non_square_rejected() {
        assert!(sym_eigen(&Matrix::zeros(2, 3)).is_err());
    }
}
