use crate::{LinalgError, Matrix, Result};

/// Thin Householder QR factorization `A = Q R` for tall matrices
/// (`rows ≥ cols`), producing column-orthonormal `Q ∈ R^{m×n}` and
/// upper-triangular `R ∈ R^{n×n}`.
///
/// P-Tucker orthogonalizes every factor matrix after convergence
/// (Algorithm 2 lines 8–11): `A⁽ⁿ⁾ = Q⁽ⁿ⁾R⁽ⁿ⁾`, `A⁽ⁿ⁾ ← Q⁽ⁿ⁾`,
/// `G ← G ×ₙ R⁽ⁿ⁾`, which preserves the reconstruction exactly.
#[derive(Debug, Clone)]
pub struct Qr {
    q: Matrix,
    r: Matrix,
}

impl Qr {
    /// Computes the thin QR factorization of `a`.
    ///
    /// The sign convention forces non-negative diagonal entries of `R`
    /// (flipping the corresponding columns of `Q`), which makes the
    /// factorization unique for full-rank input and keeps the core-tensor
    /// update deterministic.
    ///
    /// # Errors
    /// Returns [`LinalgError::InvalidArgument`] if `a.rows() < a.cols()`.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::InvalidArgument(
                "thin qr requires rows >= cols",
            ));
        }
        // Work on a copy; accumulate Householder reflectors in-place.
        let mut r_work = a.clone();
        // Store reflector vectors; v_k has length m-k.
        let mut reflectors: Vec<Vec<f64>> = Vec::with_capacity(n);

        for k in 0..n {
            // Build the Householder vector for column k below the diagonal.
            let mut norm2 = 0.0;
            for i in k..m {
                let v = r_work[(i, k)];
                norm2 += v * v;
            }
            let norm = norm2.sqrt();
            let mut v = vec![0.0; m - k];
            if norm == 0.0 {
                // Zero column: identity reflector (v = 0 means no-op).
                reflectors.push(v);
                continue;
            }
            let akk = r_work[(k, k)];
            let alpha = if akk >= 0.0 { -norm } else { norm };
            v[0] = akk - alpha;
            for i in (k + 1)..m {
                v[i - k] = r_work[(i, k)];
            }
            let vnorm2: f64 = v.iter().map(|x| x * x).sum();
            if vnorm2 > 0.0 {
                // Apply H = I - 2 v vᵀ / (vᵀv) to the trailing block of R.
                for j in k..n {
                    let mut dot = 0.0;
                    for i in k..m {
                        dot += v[i - k] * r_work[(i, j)];
                    }
                    let scale = 2.0 * dot / vnorm2;
                    for i in k..m {
                        let sub = scale * v[i - k];
                        r_work[(i, j)] -= sub;
                    }
                }
            }
            reflectors.push(v);
        }

        // Extract the upper-triangular n×n R.
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r[(i, j)] = r_work[(i, j)];
            }
        }

        // Form thin Q by applying the reflectors, in reverse, to the first n
        // columns of the identity.
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            q[(j, j)] = 1.0;
        }
        for k in (0..n).rev() {
            let v = &reflectors[k];
            let vnorm2: f64 = v.iter().map(|x| x * x).sum();
            if vnorm2 == 0.0 {
                continue;
            }
            for j in 0..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += v[i - k] * q[(i, j)];
                }
                let scale = 2.0 * dot / vnorm2;
                for i in k..m {
                    let sub = scale * v[i - k];
                    q[(i, j)] -= sub;
                }
            }
        }

        // Normalize signs: make diag(R) >= 0.
        for k in 0..n {
            if r[(k, k)] < 0.0 {
                for j in k..n {
                    r[(k, j)] = -r[(k, j)];
                }
                for i in 0..m {
                    q[(i, k)] = -q[(i, k)];
                }
            }
        }

        Ok(Qr { q, r })
    }

    /// Column-orthonormal factor `Q ∈ R^{m×n}`.
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// Upper-triangular factor `R ∈ R^{n×n}`.
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Consumes the factorization and returns `(Q, R)`.
    pub fn into_parts(self) -> (Matrix, Matrix) {
        (self.q, self.r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert!(
                    (a[(i, j)] - b[(i, j)]).abs() < tol,
                    "mismatch at ({i},{j}): {} vs {}",
                    a[(i, j)],
                    b[(i, j)]
                );
            }
        }
    }

    #[test]
    fn qr_reconstructs_tall_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.5]]);
        let qr = a.qr().unwrap();
        let rec = qr.q().matmul(qr.r()).unwrap();
        assert_close(&rec, &a, 1e-12);
    }

    #[test]
    fn q_is_orthonormal() {
        let a = Matrix::from_rows(&[
            &[2.0, -1.0, 0.5],
            &[0.0, 3.0, 1.0],
            &[1.0, 1.0, 4.0],
            &[2.0, 2.0, 2.0],
        ]);
        let qr = a.qr().unwrap();
        let qtq = qr.q().gram();
        assert_close(&qtq, &Matrix::identity(3), 1e-12);
    }

    #[test]
    fn r_is_upper_triangular_nonneg_diag() {
        let a = Matrix::from_rows(&[&[-4.0, 1.0], &[2.0, 2.0], &[0.0, -3.0]]);
        let qr = a.qr().unwrap();
        let r = qr.r();
        for i in 0..r.rows() {
            assert!(r[(i, i)] >= 0.0, "negative diagonal at {i}");
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn square_identity_fixed_point() {
        let a = Matrix::identity(3);
        let qr = a.qr().unwrap();
        let rec = qr.q().matmul(qr.r()).unwrap();
        assert_close(&rec, &Matrix::identity(3), 1e-12);
    }

    #[test]
    fn wide_matrix_rejected() {
        assert!(Matrix::zeros(2, 3).qr().is_err());
    }

    #[test]
    fn rank_deficient_still_reconstructs() {
        // Second column is a multiple of the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let qr = a.qr().unwrap();
        let rec = qr.q().matmul(qr.r()).unwrap();
        assert_close(&rec, &a, 1e-12);
    }
}
