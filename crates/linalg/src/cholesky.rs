use crate::{LinalgError, Matrix, Result};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
///
/// P-Tucker's row update (Eq. 9 of the paper) solves `(B + λI) x = c` where
/// `B = Σ δδᵀ` is positive semi-definite, so `B + λI` is SPD for any `λ > 0`
/// (Theorem 1). Cholesky is the cheapest stable solver for this, at `J³/3`
/// flops versus `J³` for an explicit inverse.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored densely (upper part is zero).
    l: Matrix,
}

impl Cholesky {
    /// Factors an SPD matrix.
    ///
    /// # Errors
    /// * [`LinalgError::InvalidArgument`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(LinalgError::InvalidArgument(
                "cholesky requires a square matrix",
            ));
        }
        let n = a.rows();
        let mut l = a.clone();
        crate::solve::cholesky_factor_in_place(l.as_mut_slice(), n)?;
        // The in-place factorization leaves A's entries above the diagonal;
        // this wrapper's contract is a clean lower-triangular `L`.
        for i in 0..n {
            for j in (i + 1)..n {
                l[(i, j)] = 0.0;
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` by forward/back substitution (one allocation for
    /// the returned solution; see [`crate::solve::cholesky_solve_factored`]
    /// for the allocation-free form). Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "cholesky solve dimension mismatch");
        let mut x = b.to_vec();
        crate::solve::cholesky_solve_factored(self.l.as_slice(), n, &mut x);
        x
    }

    /// Solves `A X = B` column-by-column.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `B` has the wrong row count.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let col = b.col(c);
            let x = self.solve(&col);
            for r in 0..n {
                out[(r, c)] = x[r];
            }
        }
        Ok(out)
    }

    /// The explicit inverse `A⁻¹` (solves against the identity).
    ///
    /// The paper's Algorithm 3 line 14 literally "find\[s\] the inverse matrix
    /// of `[B + λI]`"; [`Cholesky::solve`] is preferred, but the inverse is
    /// provided for parity and for the ablation benchmark.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        self.solve_matrix(&Matrix::identity(n))
            .expect("identity has matching shape")
    }

    /// log-determinant of `A` (`2 Σ log lᵢᵢ`), useful for diagnostics.
    pub fn log_det(&self) -> f64 {
        let n = self.dim();
        (0..n).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]])
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_residual_small() {
        let a = spd3();
        let ch = a.cholesky().unwrap();
        let b = [1.0, -2.0, 0.5];
        let x = ch.solve(&b);
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = a.cholesky().unwrap().inverse();
        let prod = a.matmul(&inv).unwrap();
        let eye = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert!((prod[(i, j)] - eye[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn rejects_non_spd() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn log_det_matches_known() {
        // det(diag(4, 9)) = 36.
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let ch = a.cholesky().unwrap();
        assert!((ch.log_det() - 36.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[&[2.0]]);
        let ch = a.cholesky().unwrap();
        let x = ch.solve(&[4.0]);
        assert!((x[0] - 2.0).abs() < 1e-15);
    }
}
