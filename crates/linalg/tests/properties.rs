//! Property-based tests of the linear-algebra kernels' mathematical
//! identities on randomized inputs.

use proptest::prelude::*;
use ptucker_linalg::{sym_eigen, Matrix};

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0..5.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
}

fn square(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n, n)
}

fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    square(n).prop_map(move |a| {
        let mut g = a.gram();
        g.add_diagonal_mut(0.5 + 0.1 * n as f64);
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_is_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let lhs = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let rhs = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn transpose_of_product_reverses(a in matrix(3, 4), b in matrix(4, 2)) {
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn determinant_is_multiplicative(a in square(3), b in square(3)) {
        let (la, lb) = (a.lu(), b.lu());
        prop_assume!(la.is_ok() && lb.is_ok());
        let ab = a.matmul(&b).unwrap();
        let lab = ab.lu();
        prop_assume!(lab.is_ok());
        let det_prod = la.unwrap().det() * lb.unwrap().det();
        let det_ab = lab.unwrap().det();
        prop_assert!(
            (det_ab - det_prod).abs() < 1e-6 * (1.0 + det_prod.abs()),
            "det(AB) = {det_ab}, det(A)det(B) = {det_prod}"
        );
    }

    #[test]
    fn cholesky_and_lu_inverses_agree(a in spd(4)) {
        let inv_ch = a.cholesky().unwrap().inverse();
        let inv_lu = a.lu().unwrap().inverse();
        for (x, y) in inv_ch.as_slice().iter().zip(inv_lu.as_slice()) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn gram_matrix_is_psd(a in matrix(5, 3)) {
        let g = a.gram();
        let e = sym_eigen(&g).unwrap();
        for &v in &e.values {
            prop_assert!(v >= -1e-9, "negative Gram eigenvalue {v}");
        }
    }

    #[test]
    fn qr_norm_preserved_per_column(a in matrix(6, 3)) {
        // ‖A eⱼ‖ = ‖R eⱼ... ‖ is false in general, but ‖A‖_F = ‖R‖_F holds
        // because Q has orthonormal columns.
        let qr = a.qr().unwrap();
        prop_assert!(
            (a.frobenius_norm() - qr.r().frobenius_norm()).abs()
                < 1e-8 * (1.0 + a.frobenius_norm())
        );
    }

    #[test]
    fn eigen_trace_and_frobenius_identities(a in spd(4)) {
        let e = sym_eigen(&a).unwrap();
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        prop_assert!((e.values.iter().sum::<f64>() - trace).abs() < 1e-7 * (1.0 + trace.abs()));
        // ‖A‖_F² = Σ λᵢ² for symmetric A.
        let fro2 = a.frobenius_norm().powi(2);
        let lam2: f64 = e.values.iter().map(|v| v * v).sum();
        prop_assert!((fro2 - lam2).abs() < 1e-6 * (1.0 + fro2));
    }

    #[test]
    fn solve_matches_inverse_multiply(a in spd(4), b in proptest::collection::vec(-3.0..3.0f64, 4)) {
        let ch = a.cholesky().unwrap();
        let x1 = ch.solve(&b);
        let x2 = ch.inverse().matvec(&b);
        for (u, v) in x1.iter().zip(&x2) {
            prop_assert!((u - v).abs() < 1e-7 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn add_diagonal_shifts_eigenvalues(a in spd(3), shift in 0.01..5.0f64) {
        let e1 = sym_eigen(&a).unwrap();
        let mut shifted = a.clone();
        shifted.add_diagonal_mut(shift);
        let e2 = sym_eigen(&shifted).unwrap();
        for (l1, l2) in e1.values.iter().zip(&e2.values) {
            prop_assert!((l2 - l1 - shift).abs() < 1e-7 * (1.0 + l1.abs()));
        }
    }
}
