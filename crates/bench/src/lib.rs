//! Shared harness utilities for the per-figure/per-table benchmark
//! binaries (see `src/bin/`).
//!
//! Every binary accepts the same flags:
//!
//! * `--scale <f>`   — workload scale factor (default varies per harness;
//!   `1.0` = the paper's full size where feasible),
//! * `--paper`       — shorthand for the paper's full-size sweep,
//! * `--threads <t>` — worker threads (default: all available),
//! * `--iters <k>`   — iterations per fit (default 3 for timing harnesses),
//! * `--seed <s>`    — RNG seed (default 0),
//! * `--budget-gb <g>` — intermediate-data budget in GiB (default 4).
//!
//! Output is a plain-text table with the same rows/series as the paper's
//! figure, plus `O.O.M.` markers where a method exceeds the budget —
//! exactly how the paper reports them.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)]

use ptucker::{FitOptions, FitResult, MemoryBudget, PTucker, PtuckerError, Schedule, Variant};
use ptucker_baselines::{s_hot, tucker_csf, tucker_wopt, BaselineOptions};
use ptucker_tensor::SparseTensor;

/// Common command-line options for the harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Workload scale in `(0, 1]`.
    pub scale: f64,
    /// Worker threads.
    pub threads: usize,
    /// Iterations per fit.
    pub iters: usize,
    /// RNG seed.
    pub seed: u64,
    /// Intermediate-data budget.
    pub budget: MemoryBudget,
    /// True when `--paper` was passed (full-size sweeps).
    pub paper: bool,
}

impl HarnessArgs {
    /// Parses `std::env::args`, with `default_scale` as the harness's
    /// laptop-scale default. Unknown flags abort with a usage message.
    pub fn parse(default_scale: f64) -> Self {
        let mut out = HarnessArgs {
            scale: default_scale,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            iters: 3,
            seed: 0,
            budget: MemoryBudget::new(4 << 30),
            paper: false,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        let usage = || -> ! {
            eprintln!(
                "usage: [--scale f] [--paper] [--threads t] [--iters k] [--seed s] [--budget-gb g]"
            );
            std::process::exit(2);
        };
        while i < argv.len() {
            match argv[i].as_str() {
                "--scale" => {
                    i += 1;
                    out.scale = argv
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage());
                }
                "--paper" => {
                    out.paper = true;
                    out.scale = 1.0;
                }
                "--threads" => {
                    i += 1;
                    out.threads = argv
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage());
                }
                "--iters" => {
                    i += 1;
                    out.iters = argv
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage());
                }
                "--seed" => {
                    i += 1;
                    out.seed = argv
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage());
                }
                "--budget-gb" => {
                    i += 1;
                    let gb: f64 = argv
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage());
                    out.budget = MemoryBudget::new((gb * (1u64 << 30) as f64) as usize);
                }
                _ => usage(),
            }
            i += 1;
        }
        out
    }
}

/// The algorithms a harness can run, in the paper's naming.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// P-Tucker (memory-optimized default).
    PTucker,
    /// P-Tucker-Cache.
    PTuckerCache,
    /// P-Tucker-Approx with the given truncation rate.
    PTuckerApprox(f64),
    /// Tucker-wOpt (accuracy-focused dense NCG).
    TuckerWopt,
    /// Tucker-CSF (compressed sparse fiber TTMc).
    TuckerCsf,
    /// S-HOT (on-the-fly TTMc).
    SHot,
}

impl Method {
    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::PTucker => "P-Tucker",
            Method::PTuckerCache => "P-Tucker-Cache",
            Method::PTuckerApprox(_) => "P-Tucker-Approx",
            Method::TuckerWopt => "Tucker-wOpt",
            Method::TuckerCsf => "Tucker-CSF",
            Method::SHot => "S-HOT",
        }
    }

    /// The four-method lineup of the scalability figures.
    pub fn figure6_lineup() -> [Method; 4] {
        [
            Method::PTucker,
            Method::TuckerWopt,
            Method::TuckerCsf,
            Method::SHot,
        ]
    }
}

/// Outcome of running one method on one workload.
#[derive(Debug)]
pub enum Outcome {
    /// Completed: the full fit result.
    Ok(Box<FitResult>),
    /// The method exceeded the intermediate-data budget.
    Oom,
    /// Any other failure (reported verbatim).
    Failed(String),
}

impl Outcome {
    /// Average seconds per iteration, if the run completed.
    pub fn time_per_iter(&self) -> Option<f64> {
        match self {
            Outcome::Ok(r) => Some(r.stats.avg_seconds_per_iter()),
            _ => None,
        }
    }

    /// Formats time/iter the way the figures report it (`O.O.M.` marker).
    pub fn time_cell(&self) -> String {
        match self {
            Outcome::Ok(r) => format!("{:>12.4}", r.stats.avg_seconds_per_iter()),
            Outcome::Oom => format!("{:>12}", "O.O.M."),
            Outcome::Failed(_) => format!("{:>12}", "FAIL"),
        }
    }

    /// Formats an arbitrary fit-derived quantity or the failure marker.
    pub fn cell(&self, f: impl Fn(&FitResult) -> String) -> String {
        match self {
            Outcome::Ok(r) => f(r),
            Outcome::Oom => format!("{:>12}", "O.O.M."),
            Outcome::Failed(_) => format!("{:>12}", "FAIL"),
        }
    }
}

/// Runs one method on one tensor with uniform settings; OOM and other
/// errors are folded into the [`Outcome`] rather than propagating, because
/// the figures *report* OOM as a data point.
pub fn run_method(
    method: Method,
    x: &SparseTensor,
    ranks: &[usize],
    args: &HarnessArgs,
) -> Outcome {
    let r: ptucker::Result<FitResult> = match method {
        Method::PTucker | Method::PTuckerCache | Method::PTuckerApprox(_) => {
            let variant = match method {
                Method::PTuckerCache => Variant::Cache,
                Method::PTuckerApprox(p) => Variant::Approx { truncation_rate: p },
                _ => Variant::Default,
            };
            PTucker::new(
                FitOptions::new(ranks.to_vec())
                    .max_iters(args.iters)
                    .tol(0.0)
                    .threads(args.threads)
                    .seed(args.seed)
                    .budget(args.budget.clone())
                    .schedule(Schedule::dynamic())
                    .variant(variant),
            )
            .and_then(|s| s.fit(x))
        }
        Method::TuckerWopt | Method::TuckerCsf | Method::SHot => {
            let opts = BaselineOptions::new(ranks.to_vec())
                .max_iters(args.iters)
                .tol(0.0)
                .threads(args.threads)
                .seed(args.seed)
                .budget(args.budget.clone());
            match method {
                Method::TuckerWopt => tucker_wopt(x, &opts),
                Method::TuckerCsf => tucker_csf(x, &opts),
                _ => s_hot(x, &opts),
            }
        }
    };
    match r {
        Ok(fit) => Outcome::Ok(Box::new(fit)),
        Err(PtuckerError::OutOfMemory(_)) => Outcome::Oom,
        Err(e) => Outcome::Failed(e.to_string()),
    }
}

/// Prints a header line followed by a separator, for the plain-text tables.
pub fn print_header(title: &str, columns: &str) {
    println!("\n=== {title} ===");
    println!("{columns}");
    println!("{}", "-".repeat(columns.len().max(20)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn run_method_all_variants_smoke() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = ptucker_datagen::uniform_sparse(&[12, 10, 8], 80, &mut rng);
        let args = HarnessArgs {
            scale: 1.0,
            threads: 2,
            iters: 2,
            seed: 0,
            budget: MemoryBudget::unlimited(),
            paper: false,
        };
        for m in [
            Method::PTucker,
            Method::PTuckerCache,
            Method::PTuckerApprox(0.2),
            Method::TuckerWopt,
            Method::TuckerCsf,
            Method::SHot,
        ] {
            let out = run_method(m, &x, &[2, 2, 2], &args);
            assert!(
                matches!(out, Outcome::Ok(_)),
                "{} failed: {out:?}",
                m.name()
            );
            assert!(out.time_per_iter().unwrap() >= 0.0);
        }
    }

    #[test]
    fn oom_becomes_outcome_not_error() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = ptucker_datagen::uniform_sparse(&[12, 10, 8], 80, &mut rng);
        let args = HarnessArgs {
            scale: 1.0,
            threads: 1,
            iters: 1,
            seed: 0,
            budget: MemoryBudget::new(256),
            paper: false,
        };
        let out = run_method(Method::TuckerWopt, &x, &[2, 2, 2], &args);
        assert!(matches!(out, Outcome::Oom));
        assert_eq!(out.time_cell().trim(), "O.O.M.");
    }
}
