//! Figure 6(d): time per iteration vs. tensor rank `J`.
//!
//! Paper settings: `N = 3`, `I = 10⁶`, `|Ω| = 10⁷`, `J = 3 … 11` (step 2).
//! Expected shape: P-Tucker fastest for every rank (12.9×/13.0× vs.
//! S-HOT/Tucker-CSF at J = 11); Tucker-wOpt O.O.M. for all ranks.
//!
//! Default: `I = 10⁴`, `|Ω| = 10⁵`; `--paper` uses the full sizes.

use ptucker_bench::{print_header, HarnessArgs, Method};
use ptucker_datagen::uniform_sparse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::parse(1.0);
    let (dim, nnz) = if args.paper {
        (1_000_000usize, 10_000_000usize)
    } else {
        (10_000usize, 100_000usize)
    };
    println!(
        "workload: N = 3, I = {dim}, |Ω| = {nnz}, J = 3..=11 step 2, {} iters, {} threads",
        args.iters, args.threads
    );

    let lineup = Method::figure6_lineup();
    let header = format!(
        "{:>3}  {}",
        "J",
        lineup
            .iter()
            .map(|m| format!("{:>16}", m.name()))
            .collect::<String>()
    );
    print_header("Fig 6(d): time per iteration (secs) vs. rank", &header);

    let dims = vec![dim; 3];
    let mut rng = StdRng::seed_from_u64(args.seed);
    let x = uniform_sparse(&dims, nnz, &mut rng);
    for rank in (3..=11).step_by(2) {
        let ranks = vec![rank; 3];
        let mut row = format!("{rank:>3}");
        for m in lineup {
            let out = ptucker_bench::run_method(m, &x, &ranks, &args);
            row.push_str(&format!("{:>16}", out.time_cell().trim()));
        }
        println!("{row}");
    }
    println!("\n(paper: P-Tucker fastest at every rank; wOpt O.O.M. for all ranks)");
}
