//! Figure 7: time per iteration on the four real-world tensors
//! (simulated stand-ins; see DESIGN.md §3 for the substitution rationale).
//!
//! Paper shape: P-Tucker and P-Tucker-Approx are the fastest on every
//! dataset (1.7–275× vs. competitors); Tucker-wOpt is O.O.M. on the two
//! large ones (Yahoo-music, MovieLens).
//!
//! Defaults use small simulation scales and J = 5 on the 4-way tensors
//! (J = 10 with `--paper`) so the harness completes in minutes on one core.

use ptucker_bench::{print_header, HarnessArgs, Method};
use ptucker_tensor::SparseTensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args = HarnessArgs::parse(1.0);
    // The paper's machine held 512 GB against tensors whose dense grids are
    // ~2e15 cells; our simulated grids are ~1e7-1e8 cells, so the budget is
    // scaled down proportionally (256 MiB) to keep the paper's qualitative
    // boundary: Tucker-wOpt O.O.M. on the two large datasets, alive on the
    // two small ones.
    args.budget = ptucker::MemoryBudget::new(256 << 20);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let j4 = if args.paper { 10 } else { 5 };

    // (name, tensor, ranks) — shapes/ranks follow Table IV of the paper.
    let datasets: Vec<(&str, SparseTensor, Vec<usize>)> = vec![
        (
            "Yahoo-music(sim)",
            ptucker_datagen::realworld::yahoo_music(0.0002 * args.scale, &mut rng),
            vec![j4, j4, j4, j4],
        ),
        (
            "MovieLens(sim)",
            ptucker_datagen::realworld::movielens(0.002 * args.scale, &mut rng).tensor,
            vec![j4, j4, j4, j4],
        ),
        (
            "Wave video(sim)",
            ptucker_datagen::realworld::wave_video((0.3 * args.scale).min(1.0), &mut rng),
            vec![3, 3, 3, 3],
        ),
        (
            "Lena image(sim)",
            ptucker_datagen::realworld::lena_image((0.3 * args.scale).min(1.0), &mut rng),
            vec![3, 3, 3],
        ),
    ];

    let methods = [
        Method::PTucker,
        Method::PTuckerApprox(0.2),
        Method::TuckerWopt,
        Method::TuckerCsf,
        Method::SHot,
    ];
    let header = format!(
        "{:<18}{}",
        "dataset",
        methods
            .iter()
            .map(|m| format!("{:>17}", m.name()))
            .collect::<String>()
    );
    print_header(
        "Fig 7: time per iteration (secs) on real-world tensors",
        &header,
    );

    for (name, x, ranks) in &datasets {
        let mut row = format!("{name:<18}");
        for m in methods {
            let mut a = args.clone();
            if m == Method::TuckerWopt {
                a.iters = 1; // dense gradients; one step suffices for timing
            }
            let out = ptucker_bench::run_method(m, x, ranks, &a);
            row.push_str(&format!("{:>17}", out.time_cell().trim()));
        }
        println!("{row}  (dims {:?}, |Ω|={})", x.dims(), x.nnz());
    }
    println!("\n(paper: P-Tucker/-Approx fastest on all datasets; wOpt O.O.M. on the large two)");
}
