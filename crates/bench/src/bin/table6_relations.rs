//! Table VI: relation discovery via the core tensor.
//!
//! Two complementary readouts, mirroring how the paper presents relations:
//!
//! 1. **Raw core scan** — the `top_k` largest-magnitude core entries, each
//!    coupling one column of every factor ("examining large values in G
//!    gives us clues to find strong relations"), with each coupled time
//!    column interpreted by its dominant rows.
//! 2. **Preference surface** — the paper's R3 ("most preferred hour for
//!    watching movies: (2015, 2pm), (2014, 0am), (2013, 9pm)") is a claim
//!    about the model's *predicted preference* over (year, hour) cells.
//!    The harness evaluates the fitted model's mean predicted rating per
//!    (year, hour) over a sample of (user, movie) pairs and reports the
//!    top cells — these must rediscover the generator's planted peaks.

use ptucker::{FitOptions, PTucker};
use ptucker_bench::{print_header, HarnessArgs};
use ptucker_datagen::realworld::{self, PLANTED_YEAR_HOUR};
use ptucker_discovery::discover_relations;
use ptucker_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rows of `factor` column `j` with the largest absolute loading.
fn dominant_rows(factor: &Matrix, j: usize, top: usize) -> Vec<usize> {
    let mut rows: Vec<usize> = (0..factor.rows()).collect();
    rows.sort_by(|&a, &b| {
        factor[(b, j)]
            .abs()
            .partial_cmp(&factor[(a, j)].abs())
            .expect("finite loadings")
    });
    rows.truncate(top);
    rows
}

fn main() {
    let mut args = HarnessArgs::parse(0.004);
    if args.iters <= 3 {
        args.iters = 8;
    }
    let mut rng = StdRng::seed_from_u64(args.seed);
    let sim = realworld::movielens(args.scale, &mut rng);
    let x = &sim.tensor;
    let years = x.dims()[2];
    let hours = x.dims()[3];
    let planted: Vec<(usize, usize)> = PLANTED_YEAR_HOUR
        .iter()
        .map(|&(dy, h)| (years - 1 - dy, h))
        .collect();
    println!(
        "workload: simulated MovieLens dims {:?}, |Ω| = {}",
        x.dims(),
        x.nnz()
    );
    println!("planted (year, hour) peaks: {planted:?}");

    let fit = PTucker::new(
        FitOptions::new(vec![8, 8, 6, 8])
            .max_iters(args.iters)
            .threads(args.threads)
            .seed(args.seed)
            .budget(args.budget.clone()),
    )
    .expect("options")
    .fit(x)
    .expect("fit");
    let d = &fit.decomposition;

    // --- Readout 1: raw top core entries --------------------------------
    let relations = discover_relations(&d.core, 5);
    print_header(
        "Table VI (raw core scan): strongest core entries",
        "rank   |G| value     core index          dominant year rows / hour rows",
    );
    for (i, r) in relations.iter().enumerate() {
        println!(
            "R{}:    {:>9.3e}   {:?}    years {:?} / hours {:?}",
            i + 1,
            r.strength,
            r.index,
            dominant_rows(&d.factors[2], r.index[2], 3),
            dominant_rows(&d.factors[3], r.index[3], 3)
        );
    }

    // --- Readout 2: model-implied (year, hour) preference surface -------
    // Sample observed (user, movie) pairs, average the model's prediction
    // over every (year, hour) cell.
    let sample = 100.min(x.nnz());
    let mut surface = vec![0.0f64; years * hours];
    let mut probe = vec![0usize; 4];
    for _ in 0..sample {
        let e = rng.gen_range(0..x.nnz());
        let idx = x.index(e);
        probe[0] = idx[0];
        probe[1] = idx[1];
        for y in 0..years {
            for h in 0..hours {
                probe[2] = y;
                probe[3] = h;
                surface[y * hours + h] += d.predict(&probe);
            }
        }
    }
    let mut cells: Vec<usize> = (0..years * hours).collect();
    cells.sort_by(|&a, &b| surface[b].partial_cmp(&surface[a]).expect("finite"));
    print_header(
        "Table VI (preference surface): most preferred (year, hour) cells",
        "rank   (year, hour)    mean predicted rating",
    );
    let peak_years: Vec<usize> = planted.iter().map(|&(y, _)| y).collect();
    let peak_hours: Vec<usize> = planted.iter().map(|&(_, h)| h).collect();
    let mut exact_hits = 0usize;
    let mut marginal_hits = 0usize;
    for (i, &cell) in cells.iter().take(5).enumerate() {
        let yh = (cell / hours, cell % hours);
        let exact = planted.contains(&yh);
        let marginal = peak_years.contains(&yh.0) && peak_hours.contains(&yh.1);
        exact_hits += usize::from(exact);
        marginal_hits += usize::from(marginal);
        println!(
            "R{}:    ({:>2}, {:>2})       {:>8.4}{}",
            i + 1,
            yh.0,
            yh.1,
            surface[cell] / sample as f64,
            if exact {
                "   <- planted peak"
            } else if marginal {
                "   <- peak-year x peak-hour cross"
            } else {
                ""
            }
        );
    }
    println!(
        "\n{exact_hits} of the top 5 cells are exact planted peaks; {marginal_hits}/5 lie in the \
         peak-year x peak-hour set"
    );
    println!(
        "(exact pairs blur into cross-products because a rank-limited Tucker model is \
         separable per mode — the discovered *structure* is the planted year/hour sets)"
    );
    println!("(paper: top core values reveal (2015,2pm), (2014,0am), (2013,9pm))");
}
