//! Figure 5: distribution of the partial reconstruction error `R(β)` over
//! core entries, and the cumulative share of the total removable error
//! contributed by the noisiest entries.
//!
//! The paper's headline: on MovieLens with J = 10, ~20% of the core entries
//! generate ~80% of the total reconstruction error — the justification for
//! P-Tucker-Approx's truncation rule.

use ptucker::{approx, FitOptions, PTucker, Schedule};
use ptucker_bench::{print_header, HarnessArgs};
use ptucker_datagen::realworld;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::parse(0.002);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let sim = realworld::movielens(args.scale, &mut rng);
    let x = sim.tensor;
    let j = if args.paper { 10 } else { 5 };
    let ranks = vec![j, j, j.min(21), j.min(24)];
    println!(
        "workload: simulated MovieLens dims {:?}, |Ω| = {}, J = {j}",
        x.dims(),
        x.nnz()
    );

    // Fit a few iterations, then measure R(β) on the fitted model — the
    // same state Algorithm 4 sees at the start of a truncation step.
    let fit = PTucker::new(
        FitOptions::new(ranks)
            .max_iters(args.iters.max(3))
            .threads(args.threads)
            .seed(args.seed)
            .budget(args.budget.clone()),
    )
    .expect("options")
    .fit(&x)
    .expect("fit");
    let d = fit.decomposition;
    let r = approx::partial_errors(&x, &d.factors, &d.core, args.threads, Schedule::dynamic());

    // Distribution of R(β): sorted descending, report deciles.
    let mut sorted = r.clone();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite R"));
    print_header(
        "Fig 5 (left): distribution of R(β), descending",
        "percentile      R(beta)",
    );
    for pct in [0usize, 10, 20, 30, 40, 50, 60, 70, 80, 90, 99] {
        let idx = (pct * sorted.len().saturating_sub(1)) / 100;
        println!("{pct:>9}%   {:>12.6}", sorted[idx]);
    }

    // Cumulative share of the total *positive* (removable) error.
    let positive_total: f64 = sorted.iter().filter(|&&v| v > 0.0).sum();
    print_header(
        "Fig 5 (right): cumulative share of removable reconstruction error",
        "top-x% noisiest entries    share of removable error",
    );
    let mut acc = 0.0;
    let mut next_mark = 10usize;
    for (i, &v) in sorted.iter().enumerate() {
        acc += v.max(0.0);
        let pct_entries = 100 * (i + 1) / sorted.len();
        while pct_entries >= next_mark && next_mark <= 100 {
            println!(
                "{:>22}%    {:>6.1}%",
                next_mark,
                100.0 * acc / positive_total.max(f64::MIN_POSITIVE)
            );
            next_mark += 10;
        }
    }
    let top20: f64 = sorted
        .iter()
        .take(sorted.len() / 5)
        .map(|&v| v.max(0.0))
        .sum();
    println!(
        "\npaper's claim analogue: top 20% of entries carry {:.1}% of removable error",
        100.0 * top20 / positive_total.max(f64::MIN_POSITIVE)
    );
}
