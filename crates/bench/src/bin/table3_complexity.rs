//! Table III: empirical validation of the time and memory complexity
//! analysis.
//!
//! For each driver variable the harness doubles (or 10×es) one factor while
//! holding the others fixed and reports the measured ratio next to the
//! theoretical prediction:
//!
//! * P-Tucker time ~ `O(N·I·J³ + N²·|Ω|·Jᴺ)`  → linear in `|Ω|`,
//! * P-Tucker memory ~ `O(T·J²)`              → linear in `T`, quadratic in `J`,
//! * P-Tucker-Cache memory ~ `O(|Ω|·Jᴺ)`      → linear in `|Ω|`.

use ptucker_bench::{print_header, HarnessArgs, Method, Outcome};
use ptucker_datagen::uniform_sparse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn time_of(out: &Outcome) -> f64 {
    out.time_per_iter().unwrap_or(f64::NAN)
}

fn mem_of(out: &Outcome) -> f64 {
    match out {
        Outcome::Ok(r) => r.stats.peak_intermediate_bytes as f64,
        _ => f64::NAN,
    }
}

fn main() {
    let args = HarnessArgs::parse(1.0);
    let mut rng = StdRng::seed_from_u64(args.seed);

    print_header(
        "Table III empirical check",
        "quantity                          config A -> config B      measured ratio   theory",
    );

    // --- time vs |Ω| (linear) -----------------------------------------
    {
        let dims = [2_000usize; 3];
        let ranks = [5usize; 3];
        let xa = uniform_sparse(&dims, 20_000, &mut rng);
        let xb = uniform_sparse(&dims, 40_000, &mut rng);
        let a = ptucker_bench::run_method(Method::PTucker, &xa, &ranks, &args);
        let b = ptucker_bench::run_method(Method::PTucker, &xb, &ranks, &args);
        println!(
            "P-Tucker time ~ |Ω|              |Ω| 20k -> 40k           {:>10.2}x      2.0x",
            time_of(&b) / time_of(&a)
        );
    }

    // --- time vs J (J^N term: 8x for J doubling at N=3) ----------------
    {
        let dims = [2_000usize; 3];
        let xa = uniform_sparse(&dims, 20_000, &mut rng);
        let a = ptucker_bench::run_method(Method::PTucker, &xa, &[4, 4, 4], &args);
        let b = ptucker_bench::run_method(Method::PTucker, &xa, &[8, 8, 8], &args);
        println!(
            "P-Tucker time ~ J^N (N=3)        J 4 -> 8                 {:>10.2}x      8.0x",
            time_of(&b) / time_of(&a)
        );
    }

    // --- memory vs T (linear) ------------------------------------------
    {
        let dims = [2_000usize; 3];
        let ranks = [8usize; 3];
        let xa = uniform_sparse(&dims, 20_000, &mut rng);
        let mut a1 = args.clone();
        a1.threads = 1;
        let mut a4 = args.clone();
        a4.threads = 4;
        let a = ptucker_bench::run_method(Method::PTucker, &xa, &ranks, &a1);
        let b = ptucker_bench::run_method(Method::PTucker, &xa, &ranks, &a4);
        println!(
            "P-Tucker memory ~ T              T 1 -> 4                 {:>10.2}x      4.0x",
            mem_of(&b) / mem_of(&a)
        );
    }

    // --- memory vs J (quadratic) ----------------------------------------
    {
        let dims = [2_000usize; 3];
        let xa = uniform_sparse(&dims, 20_000, &mut rng);
        let mut a1 = args.clone();
        a1.threads = 2;
        let a = ptucker_bench::run_method(Method::PTucker, &xa, &[4, 4, 4], &a1);
        let b = ptucker_bench::run_method(Method::PTucker, &xa, &[8, 8, 8], &a1);
        println!(
            "P-Tucker memory ~ J^2            J 4 -> 8                 {:>10.2}x      4.0x",
            mem_of(&b) / mem_of(&a)
        );
    }

    // --- cache memory vs |Ω| (linear) ------------------------------------
    {
        let dims = [500usize; 3];
        let ranks = [3usize; 3];
        let xa = uniform_sparse(&dims, 2_000, &mut rng);
        let xb = uniform_sparse(&dims, 4_000, &mut rng);
        let a = ptucker_bench::run_method(Method::PTuckerCache, &xa, &ranks, &args);
        let b = ptucker_bench::run_method(Method::PTuckerCache, &xb, &ranks, &args);
        println!(
            "Cache memory ~ |Ω|·J^N           |Ω| 2k -> 4k             {:>10.2}x      2.0x",
            mem_of(&b) / mem_of(&a)
        );
    }

    // --- S-HOT vs CSF memory gap (J^{N-1} vs I·J^{N-1}) ------------------
    {
        let dims = [2_000usize; 3];
        let ranks = [5usize; 3];
        let xa = uniform_sparse(&dims, 10_000, &mut rng);
        let mut one_iter = args.clone();
        one_iter.iters = 1;
        let shot = ptucker_bench::run_method(Method::SHot, &xa, &ranks, &one_iter);
        let csf = ptucker_bench::run_method(Method::TuckerCsf, &xa, &ranks, &one_iter);
        println!(
            "CSF / S-HOT memory (I = 2000)    same workload            {:>10.1}x    ~I/J = 400x",
            mem_of(&csf) / mem_of(&shot)
        );
    }
    println!("\n(ratios within ~2x of theory are expected: constants and overheads are real)");
}
