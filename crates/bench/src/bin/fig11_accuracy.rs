//! Figure 11: accuracy on the real-world tensors — reconstruction error
//! (left) and held-out test RMSE (right) for every method.
//!
//! Paper shape: P-Tucker attains 1.4–4.8× lower reconstruction error and
//! 1.4–4.3× lower test RMSE than the best competitor; S-HOT/Tucker-CSF are
//! far off because they impute missing entries as zeros; Tucker-wOpt
//! (observed-only, like P-Tucker) is closer but still 1.4–2.6× worse, and
//! O.O.M. on the large tensors.
//!
//! Protocol: 90% train / 10% held-out split (Section IV-A1).
//!
//! A storage-precision companion study follows the paper's figure: the
//! same P-Tucker fit with f64 vs f32 value/Pres storage (accumulation is
//! f64 in both), run to a convergence tolerance so the iteration counts
//! are comparable — the accuracy cost of the halved footprint, reported
//! next to the reconstruction error it buys.

use ptucker::{FitOptions, PTucker, Schedule, StoragePrecision};
use ptucker_bench::{print_header, HarnessArgs, Method, Outcome};
use ptucker_tensor::{SparseTensor, TrainTestSplit};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args = HarnessArgs::parse(1.0);
    if args.iters <= 3 {
        args.iters = 8; // accuracy needs convergence, not timing
    }
    // The paper's machine held 512 GB against tensors whose dense grids are
    // ~2e15 cells; our simulated grids are ~1e7-1e8 cells, so the budget is
    // scaled down proportionally (256 MiB) to keep the paper's qualitative
    // boundary: Tucker-wOpt O.O.M. on the two large datasets, alive on the
    // two small ones.
    args.budget = ptucker::MemoryBudget::new(256 << 20);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let j4 = if args.paper { 10 } else { 5 };

    let datasets: Vec<(&str, SparseTensor, Vec<usize>)> = vec![
        (
            "Yahoo-music(sim)",
            ptucker_datagen::realworld::yahoo_music(0.0002 * args.scale, &mut rng),
            vec![j4, j4, j4, j4],
        ),
        (
            "MovieLens(sim)",
            ptucker_datagen::realworld::movielens(0.002 * args.scale, &mut rng).tensor,
            vec![j4, j4, j4, j4],
        ),
        (
            "Wave video(sim)",
            ptucker_datagen::realworld::wave_video((0.3 * args.scale).min(1.0), &mut rng),
            vec![3, 3, 3, 3],
        ),
        (
            "Lena image(sim)",
            ptucker_datagen::realworld::lena_image((0.3 * args.scale).min(1.0), &mut rng),
            vec![3, 3, 3],
        ),
    ];

    let methods = [
        Method::PTucker,
        Method::TuckerWopt,
        Method::TuckerCsf,
        Method::SHot,
    ];

    for (name, x, ranks) in &datasets {
        let split = TrainTestSplit::new(x, 0.1, &mut rng).expect("split");
        print_header(
            &format!(
                "Fig 11: {name} (dims {:?}, |Ω|={}, J={})",
                x.dims(),
                x.nnz(),
                ranks[0]
            ),
            "method         recon error      test RMSE",
        );
        for m in methods {
            let out = ptucker_bench::run_method(m, &split.train, ranks, &args);
            match out {
                Outcome::Ok(r) => {
                    let rmse =
                        r.decomposition
                            .test_rmse(&split.test, args.threads, Schedule::Static);
                    println!(
                        "{:<14}  {:>11.4}    {:>11.4}",
                        m.name(),
                        r.stats.final_error,
                        rmse
                    );
                }
                other => println!(
                    "{:<14}  {:>11}    {:>11}",
                    m.name(),
                    other.time_cell().trim(),
                    other.time_cell().trim()
                ),
            }
        }
    }
    println!(
        "\n(paper: P-Tucker 1.4-4.8x lower error / 1.4-4.3x lower RMSE; zero-imputing \
         S-HOT & Tucker-CSF worst on held-out prediction)"
    );

    // Storage-precision study: f64 vs f32 storage, convergence-tolerance
    // stopping so a precision that converges differently shows up in the
    // iteration count, not just the error.
    for (name, x, ranks) in &datasets {
        let split = TrainTestSplit::new(x, 0.1, &mut rng).expect("split");
        print_header(
            &format!("Fig 11 (storage precision): {name} (J={})", ranks[0]),
            "storage     recon error      test RMSE   iters",
        );
        let mut errors = [f64::NAN; 2];
        for (slot, (label, precision)) in [
            ("f64", StoragePrecision::F64),
            ("f32", StoragePrecision::F32),
        ]
        .into_iter()
        .enumerate()
        {
            let fit = PTucker::new(
                FitOptions::new(ranks.clone())
                    .max_iters(args.iters.max(8))
                    .tol(1e-4)
                    .threads(args.threads)
                    .seed(args.seed)
                    .budget(args.budget.clone())
                    .schedule(Schedule::dynamic())
                    .precision(precision),
            )
            .and_then(|s| s.fit(&split.train));
            match fit {
                Ok(r) => {
                    let rmse =
                        r.decomposition
                            .test_rmse(&split.test, args.threads, Schedule::Static);
                    errors[slot] = r.stats.final_error;
                    println!(
                        "{:<10}  {:>11.6}    {:>11.6}   {:>5}",
                        label,
                        r.stats.final_error,
                        rmse,
                        r.stats.iterations.len()
                    );
                }
                Err(e) => println!("{label:<10}  {e}"),
            }
        }
        if errors.iter().all(|e| e.is_finite()) {
            println!(
                "f32/f64 recon-error ratio: {:.9} (rel gap {:.2e}; 1.0 = free half-footprint)",
                errors[1] / errors[0],
                (errors[1] - errors[0]).abs() / errors[0].max(1e-300)
            );
        }
    }
}
