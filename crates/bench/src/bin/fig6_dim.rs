//! Figure 6(b): time per iteration vs. dimensionality `I`.
//!
//! Paper settings: `N = 3`, `|Ω| = 10·I`, `Jₙ = 10`, `I = 10² … 10⁷`.
//! Expected shape: P-Tucker fastest at every size; Tucker-wOpt thousands of
//! times slower where it runs and O.O.M. once its dense `I³` intermediates
//! exceed the budget; S-HOT/Tucker-CSF complete but slower.
//!
//! Default sweep: `I = 10²…10⁴` (the 4 GiB default budget shifts wOpt's
//! O.O.M. boundary one decade earlier than the paper's 512 GB machine —
//! same mechanism, smaller machine). `--paper` extends to 10⁶.

use ptucker_bench::{print_header, HarnessArgs, Method};
use ptucker_datagen::uniform_sparse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::parse(1.0);
    let rank = 10usize;
    let max_pow = if args.paper { 6 } else { 4 };
    println!(
        "workload: N = 3, |Ω| = 10·I, J = {rank}, I = 1e2..1e{max_pow}, {} iters, {} threads",
        args.iters, args.threads
    );

    let lineup = Method::figure6_lineup();
    let header = format!(
        "{:>9}  {}",
        "I",
        lineup
            .iter()
            .map(|m| format!("{:>16}", m.name()))
            .collect::<String>()
    );
    print_header(
        "Fig 6(b): time per iteration (secs) vs. dimensionality",
        &header,
    );

    for pow in 2..=max_pow {
        let dim = 10usize.pow(pow);
        let dims = vec![dim; 3];
        let ranks = vec![rank; 3];
        let nnz = 10 * dim;
        let mut rng = StdRng::seed_from_u64(args.seed + pow as u64);
        let x = uniform_sparse(&dims, nnz, &mut rng);
        let mut row = format!("{dim:>9}");
        for m in lineup {
            let mut a = args.clone();
            if m == Method::TuckerWopt && dim >= 1_000 {
                a.iters = 1; // dense gradients: one step is enough to time
            }
            let out = ptucker_bench::run_method(m, &x, &ranks, &a);
            row.push_str(&format!("{:>16}", out.time_cell().trim()));
        }
        println!("{row}");
    }
    println!("\n(paper: P-Tucker fastest across all I; wOpt O.O.M. from I=1e4; here the");
    println!(" smaller default budget moves wOpt's boundary to I=1e3 — same mechanism)");
}
