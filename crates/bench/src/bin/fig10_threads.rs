//! Figure 10: parallelization scalability — speed-up `Time₁/Time_T` and
//! memory vs. thread count — plus the Section IV-D dynamic-vs-static
//! scheduling ablation.
//!
//! Paper settings: `N = 3`, `I = 10⁶`, `|Ω| = 10⁷`, threads 1…20; expected
//! near-linear speed-up and near-linear (gentle) memory growth in `T`
//! (per-thread `O(J²)` buffers). The paper's scheduling ablation on
//! MovieLens (J = 10) showed dynamic ~1.5× faster than a *naive
//! equal-row-count* static split because slice sizes are Zipf-skewed.
//! Since the mode-major plan landed, the engine's `Schedule::Static` is
//! the **nnz-balanced** static partition (contiguous blocks of near-equal
//! `Σ|Ω⁽ⁿ⁾ᵢ|`), so this ablation now measures dynamic vs balanced-static:
//! a small gap here is the *success* criterion for the partitioner, not
//! the paper's imbalance demonstration (the naive split no longer exists
//! in the engine).
//!
//! NOTE: on a single-core machine the speed-up curve necessarily
//! degenerates to ~1×; the harness still reports the measured curve and the
//! per-thread memory accounting, which is hardware-independent.

use ptucker::{FitOptions, PTucker, Schedule};
use ptucker_bench::{print_header, HarnessArgs};
use ptucker_datagen::{realworld, uniform_sparse};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::parse(1.0);
    let (dim, nnz) = if args.paper {
        (1_000_000usize, 10_000_000usize)
    } else {
        (10_000usize, 100_000usize)
    };
    let ranks = vec![10usize; 3];
    let mut rng = StdRng::seed_from_u64(args.seed);
    let x = uniform_sparse(&[dim; 3], nnz, &mut rng);
    println!(
        "workload: N = 3, I = {dim}, |Ω| = {nnz}, J = 10, {} iters",
        args.iters
    );

    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let max_t = if args.paper { 20 } else { hw.clamp(4, 8) };
    print_header(
        "Fig 10: speed-up and memory vs. threads",
        "  T    time/iter    speedup T1/TT    peak intermediates",
    );
    let mut t1 = None;
    for t in 1..=max_t {
        let fit = PTucker::new(
            FitOptions::new(ranks.clone())
                .max_iters(args.iters)
                .tol(0.0)
                .threads(t)
                .seed(args.seed)
                .budget(args.budget.clone()),
        )
        .expect("options")
        .fit(&x)
        .expect("fit");
        let ti = fit.stats.avg_seconds_per_iter();
        let t1v = *t1.get_or_insert(ti);
        println!(
            "{t:>3}    {ti:>8.4}s    {:>12.2}x    {:>14} B",
            t1v / ti.max(1e-12),
            fit.stats.peak_intermediate_bytes
        );
    }
    println!("(hardware threads available here: {hw})");

    // --- Section IV-D: dynamic vs. naive static scheduling ------------
    let mut rng = StdRng::seed_from_u64(args.seed + 1);
    let sim = realworld::movielens(0.002 * args.scale.max(0.1), &mut rng);
    let skewed = sim.tensor;
    let ranks4 = vec![5, 5, 5, 5];
    let threads = hw.clamp(2, 8);
    print_header(
        "Sec IV-D: dynamic vs nnz-balanced static on skewed MovieLens slices",
        "schedule         time/iter",
    );
    for (name, sched) in [
        ("dynamic      ", Schedule::dynamic()),
        ("balanced stat", Schedule::Static),
    ] {
        let fit = PTucker::new(
            FitOptions::new(ranks4.clone())
                .max_iters(args.iters)
                .tol(0.0)
                .threads(threads)
                .schedule(sched)
                .seed(args.seed)
                .budget(args.budget.clone()),
        )
        .expect("options")
        .fit(&skewed)
        .expect("fit");
        println!("{name}    {:>8.4}s", fit.stats.avg_seconds_per_iter());
    }
    println!(
        "(paper: dynamic ~1.5x faster than a naive equal-row-count static split on 20 \
         threads; the engine's static is now nnz-balanced, so near-parity with dynamic \
         is expected — the naive split's imbalance is what both policies fix)"
    );
}
