//! Figure 6(c): time per iteration vs. number of observable entries `|Ω|`.
//!
//! Paper settings: `N = 3`, `I = 10⁷`, `Jₙ = 10`, `|Ω| = 10³ … 10⁷`.
//! Expected shape: P-Tucker scales **near-linearly** in `|Ω|` and is the
//! fastest throughout (14.1×/44.3× vs. S-HOT/Tucker-CSF at `|Ω| = 10⁷`);
//! Tucker-wOpt is O.O.M. everywhere (dense `I³` is astronomical).
//!
//! Default: `I = 10⁵`, `|Ω| = 10³…10⁵`; `--paper` uses `I = 10⁷` and
//! extends `|Ω|` to 10⁷.

use ptucker_bench::{print_header, HarnessArgs, Method, Outcome};
use ptucker_datagen::uniform_sparse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::parse(1.0);
    let rank = 10usize;
    let (dim, max_pow) = if args.paper {
        (10_000_000usize, 7u32)
    } else {
        (100_000usize, 5u32)
    };
    println!(
        "workload: N = 3, I = {dim}, J = {rank}, |Ω| = 1e3..1e{max_pow}, {} iters, {} threads",
        args.iters, args.threads
    );

    let lineup = Method::figure6_lineup();
    let header = format!(
        "{:>10}  {}",
        "|Omega|",
        lineup
            .iter()
            .map(|m| format!("{:>16}", m.name()))
            .collect::<String>()
    );
    print_header("Fig 6(c): time per iteration (secs) vs. |Ω|", &header);

    let mut ptucker_times: Vec<(usize, f64)> = Vec::new();
    for pow in 3..=max_pow {
        let nnz = 10usize.pow(pow);
        let dims = vec![dim; 3];
        let ranks = vec![rank; 3];
        let mut rng = StdRng::seed_from_u64(args.seed + pow as u64);
        let x = uniform_sparse(&dims, nnz, &mut rng);
        let mut row = format!("{nnz:>10}");
        for m in lineup {
            let out = ptucker_bench::run_method(m, &x, &ranks, &args);
            if m == Method::PTucker {
                if let Outcome::Ok(ref r) = out {
                    ptucker_times.push((nnz, r.stats.avg_seconds_per_iter()));
                }
            }
            row.push_str(&format!("{:>16}", out.time_cell().trim()));
        }
        println!("{row}");
    }

    // Near-linearity check: successive time ratios vs. the 10x nnz ratios.
    if ptucker_times.len() >= 2 {
        println!("\nP-Tucker near-linearity in |Ω| (time ratio per 10x entries):");
        for w in ptucker_times.windows(2) {
            println!(
                "  {} -> {}: {:.2}x",
                w[0].0,
                w[1].0,
                w[1].1 / w[0].1.max(1e-12)
            );
        }
    }
    println!(
        "\n(paper: P-Tucker near-linear in |Ω|, fastest throughout; wOpt O.O.M. at all sizes)"
    );
}
