//! Figure 6(a): time per iteration vs. tensor order `N`.
//!
//! Paper settings: `Iₙ = 10²`, `|Ω| = 10³`, `Jₙ = 3`, `N = 3 … 10`.
//! Expected shape: P-Tucker fastest throughout; Tucker-wOpt orders of
//! magnitude slower at N = 4 and O.O.M. for N ≥ 5 (dense `Iᴺ`
//! intermediates); S-HOT and Tucker-CSF complete but trail P-Tucker.
//!
//! Default sweep stops at N = 8 to keep runtime friendly; `--paper` runs
//! the full N = 3…10.

use ptucker_bench::{print_header, HarnessArgs, Method};
use ptucker_datagen::uniform_sparse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::parse(1.0);
    let dim = 100usize;
    let nnz = 1_000usize;
    let rank = 3usize;
    let max_order = if args.paper { 10 } else { 8 };
    println!(
        "workload: I = {dim}, |Ω| = {nnz}, J = {rank}, N = 3..={max_order}, {} iters, {} threads",
        args.iters, args.threads
    );

    let lineup = Method::figure6_lineup();
    let header = format!(
        "{:>3}  {}",
        "N",
        lineup
            .iter()
            .map(|m| format!("{:>16}", m.name()))
            .collect::<String>()
    );
    print_header("Fig 6(a): time per iteration (secs) vs. order", &header);

    for order in 3..=max_order {
        let dims = vec![dim; order];
        let ranks = vec![rank; order];
        let mut rng = StdRng::seed_from_u64(args.seed + order as u64);
        let x = uniform_sparse(&dims, nnz, &mut rng);
        let mut row = format!("{order:>3}");
        for m in lineup {
            // wOpt's dense gradients make N = 4 already take minutes; a
            // single iteration suffices for per-iteration timing there.
            let mut a = args.clone();
            if m == Method::TuckerWopt && order >= 4 {
                a.iters = 1;
            }
            let out = ptucker_bench::run_method(m, &x, &ranks, &a);
            row.push_str(&format!("{:>16}", out.time_cell().trim()));
        }
        println!("{row}");
    }
    println!("\n(paper: P-Tucker fastest; wOpt ~60000x slower at N=4, O.O.M. for N>=5)");
}
