//! Figure 8: P-Tucker vs. P-Tucker-Cache — running time (a) and memory (b)
//! as the tensor order grows.
//!
//! Paper settings: `Iₙ = 10²`, `|Ω| = 10³`, `Jₙ = 3`, `N = 6 … 10`.
//! Expected shape: Cache up to ~1.7× faster (gap widening with N, since
//! its δ update is `O(1)` vs. `O(N)` per (entry, core-entry) pair), while
//! its `|Ω|×|G|` table needs ~29.5× more memory at N = 10.
//!
//! Default sweeps N = 6…9 (the N = 10 cache table is ~470 MB); `--paper`
//! runs the full range.

use ptucker_bench::{print_header, HarnessArgs, Method, Outcome};
use ptucker_datagen::uniform_sparse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::parse(1.0);
    let dim = 100usize;
    let nnz = 1_000usize;
    let rank = 3usize;
    let max_order = if args.paper { 10 } else { 9 };
    println!(
        "workload: I = {dim}, |Ω| = {nnz}, J = {rank}, N = 6..={max_order}, {} iters",
        args.iters
    );

    print_header(
        "Fig 8: P-Tucker vs P-Tucker-Cache (time & peak intermediate memory)",
        "  N    time P-Tucker    time Cache    speedup    mem P-Tucker      mem Cache    ratio",
    );
    for order in 6..=max_order {
        let dims = vec![dim; order];
        let ranks = vec![rank; order];
        let mut rng = StdRng::seed_from_u64(args.seed + order as u64);
        let x = uniform_sparse(&dims, nnz, &mut rng);
        let base = ptucker_bench::run_method(Method::PTucker, &x, &ranks, &args);
        let cache = ptucker_bench::run_method(Method::PTuckerCache, &x, &ranks, &args);
        match (&base, &cache) {
            (Outcome::Ok(b), Outcome::Ok(c)) => {
                let tb = b.stats.avg_seconds_per_iter();
                let tc = c.stats.avg_seconds_per_iter();
                let mb = b.stats.peak_intermediate_bytes;
                let mc = c.stats.peak_intermediate_bytes;
                println!(
                    "{order:>3}    {tb:>12.4}s   {tc:>10.4}s    {:>6.2}x    {mb:>11} B   {mc:>11} B   {:>5.1}x",
                    tb / tc.max(1e-12),
                    mc as f64 / mb.max(1) as f64
                );
            }
            _ => println!(
                "{order:>3}    {:>13}   {:>11}",
                base.time_cell().trim(),
                cache.time_cell().trim()
            ),
        }
    }
    println!("\n(paper: Cache up to 1.7x faster; P-Tucker ~29.5x leaner at N = 10)");
}
