//! Figure 9: P-Tucker vs. P-Tucker-Approx on the MovieLens tensor —
//! per-iteration running time (a) and error-vs-time convergence (b).
//!
//! Paper shape (J = 5, p = 0.2): Approx's per-iteration time *decreases*
//! every iteration as the core shrinks, overtaking P-Tucker from iteration
//! ~3 and converging ~1.7× earlier at nearly the same final error.

use ptucker::{FitOptions, PTucker, Variant};
use ptucker_bench::{print_header, HarnessArgs};
use ptucker_datagen::realworld;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args = HarnessArgs::parse(0.002);
    if args.iters <= 3 {
        args.iters = 9; // the figure needs a trajectory
    }
    let mut rng = StdRng::seed_from_u64(args.seed);
    let sim = realworld::movielens(args.scale, &mut rng);
    let x = sim.tensor;
    let ranks = vec![5, 5, 5, 5];
    println!(
        "workload: simulated MovieLens dims {:?}, |Ω| = {}, J = 5, p = 0.2",
        x.dims(),
        x.nnz()
    );

    let fit = |variant: Variant| {
        PTucker::new(
            FitOptions::new(ranks.clone())
                .max_iters(args.iters)
                .tol(0.0)
                .threads(args.threads)
                .seed(args.seed)
                .budget(args.budget.clone())
                .variant(variant),
        )
        .expect("options")
        .fit(&x)
        .expect("fit")
    };
    let plain = fit(Variant::Default);
    let approx = fit(Variant::Approx {
        truncation_rate: 0.2,
    });

    print_header(
        "Fig 9(a): per-iteration running time (secs)",
        "iter    P-Tucker    P-Tucker-Approx    |G| after truncation",
    );
    for (p, a) in plain.stats.iterations.iter().zip(&approx.stats.iterations) {
        println!(
            "{:>4}    {:>8.4}    {:>15.4}    {:>12}",
            p.iter, p.seconds, a.seconds, a.core_nnz
        );
    }

    print_header(
        "Fig 9(b): reconstruction error vs. cumulative time",
        "series         cum-seconds    error",
    );
    for (t, e) in plain.stats.error_trajectory() {
        println!("P-Tucker       {t:>11.4}    {e:.4}");
    }
    for (t, e) in approx.stats.error_trajectory() {
        println!("P-Tucker-Apx   {t:>11.4}    {e:.4}");
    }

    let total_plain: f64 = plain.stats.iterations.iter().map(|s| s.seconds).sum();
    let total_approx: f64 = approx.stats.iterations.iter().map(|s| s.seconds).sum();
    println!(
        "\ntotals: P-Tucker {total_plain:.2}s, Approx {total_approx:.2}s ({:.2}x), final errors {:.4} vs {:.4}",
        total_plain / total_approx.max(1e-12),
        plain.stats.iterations.last().unwrap().reconstruction_error,
        approx.stats.iterations.last().unwrap().reconstruction_error,
    );
    println!("(paper: Approx speeds up every iteration, converges ~1.7x faster, ~same error)");
}
