//! Table V: concept discovery on the MovieLens tensor.
//!
//! The paper clusters the movie-factor rows (J = 8, K = 100 on the real
//! 27K-movie data) and reads genre concepts out of the clusters. The
//! simulated stand-in plants a ground-truth genre per movie, so this
//! harness can *score* the discovery (cluster purity) in addition to
//! listing representative movies per concept, and can contrast P-Tucker's
//! factors with the near-degenerate factors a zero-imputing method yields
//! (the paper's observation that "S-HOTSCAN and TUCKER-CSF produce factor
//! matrices mostly filled with zeros, which trigger highly inaccurate
//! clustering").

use ptucker::{FitOptions, PTucker};
use ptucker_baselines::{tucker_csf, BaselineOptions};
use ptucker_bench::{print_header, HarnessArgs};
use ptucker_datagen::realworld::{self, GENRE_NAMES, NUM_GENRES};
use ptucker_discovery::{cluster_purity, discover_concepts};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args = HarnessArgs::parse(0.004);
    if args.iters <= 3 {
        args.iters = 8;
    }
    let mut rng = StdRng::seed_from_u64(args.seed);
    let sim = realworld::movielens(args.scale, &mut rng);
    let x = &sim.tensor;
    let ranks = vec![8, 8, 4, 4]; // J = 8 on the clustered (movie) mode
    println!(
        "workload: simulated MovieLens dims {:?}, |Ω| = {}, {} planted genres",
        x.dims(),
        x.nnz(),
        NUM_GENRES
    );

    let fit = PTucker::new(
        FitOptions::new(ranks.clone())
            .max_iters(args.iters)
            .threads(args.threads)
            .seed(args.seed)
            .budget(args.budget.clone()),
    )
    .expect("options")
    .fit(x)
    .expect("fit");
    let movie_factor = &fit.decomposition.factors[1];
    let concepts = discover_concepts(movie_factor, NUM_GENRES, args.seed);
    let purity = cluster_purity(&concepts.clustering.assignments, &sim.movie_genre);

    print_header(
        "Table V: movie concepts discovered from the P-Tucker movie factor",
        "concept    top representative movies (planted genre in parentheses)",
    );
    for c in 0..concepts.num_clusters().min(4) {
        let reps: Vec<String> = concepts
            .representatives(c, 3)
            .iter()
            .map(|&m| format!("Movie-{m} ({})", GENRE_NAMES[sim.movie_genre[m]]))
            .collect();
        // Majority planted genre of the cluster = the concept's identity.
        let mut counts = [0usize; NUM_GENRES];
        for &m in &concepts.members[c] {
            counts[sim.movie_genre[m]] += 1;
        }
        let majority = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(g, _)| GENRE_NAMES[g])
            .unwrap_or("?");
        println!("C{}: {:<12} {}", c + 1, majority, reps.join(", "));
    }
    println!("\ncluster purity vs planted genres: {purity:.2}");

    // Contrast: the same clustering on a zero-imputing method's factor.
    let csf = tucker_csf(
        x,
        &BaselineOptions::new(ranks)
            .max_iters(args.iters)
            .threads(args.threads)
            .seed(args.seed)
            .budget(args.budget.clone()),
    )
    .expect("csf fit");
    let csf_concepts = discover_concepts(&csf.decomposition.factors[1], NUM_GENRES, args.seed);
    let csf_purity = cluster_purity(&csf_concepts.clustering.assignments, &sim.movie_genre);
    println!("cluster purity from Tucker-CSF factors: {csf_purity:.2}");
    println!(
        "\n(paper: P-Tucker reveals coherent genre concepts; zero-imputing competitors \
         cannot — their factors cluster poorly)"
    );
}
