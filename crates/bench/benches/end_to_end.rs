//! Criterion end-to-end benchmarks: one full fit (few iterations) per
//! algorithm on a common small tensor, plus the three P-Tucker variants
//! against each other — the microbenchmark companion to the Fig. 6/8/9
//! harnesses.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ptucker::{FitOptions, MemoryBudget, PTucker, Variant};
use ptucker_baselines::{s_hot, tucker_csf, tucker_wopt, BaselineOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_methods(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let x = ptucker_datagen::uniform_sparse(&[60, 50, 40], 3_000, &mut rng);
    let ranks = vec![4usize, 4, 4];
    let iters = 3;

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);

    group.bench_function("ptucker", |b| {
        b.iter(|| {
            let fit = PTucker::new(
                FitOptions::new(ranks.clone())
                    .max_iters(iters)
                    .tol(0.0)
                    .threads(1)
                    .seed(1)
                    .budget(MemoryBudget::unlimited()),
            )
            .unwrap()
            .fit(&x)
            .unwrap();
            black_box(fit.stats.final_error)
        })
    });
    group.bench_function("ptucker_cache", |b| {
        b.iter(|| {
            let fit = PTucker::new(
                FitOptions::new(ranks.clone())
                    .max_iters(iters)
                    .tol(0.0)
                    .threads(1)
                    .seed(1)
                    .budget(MemoryBudget::unlimited())
                    .variant(Variant::Cache),
            )
            .unwrap()
            .fit(&x)
            .unwrap();
            black_box(fit.stats.final_error)
        })
    });
    group.bench_function("ptucker_approx", |b| {
        b.iter(|| {
            let fit = PTucker::new(
                FitOptions::new(ranks.clone())
                    .max_iters(iters)
                    .tol(0.0)
                    .threads(1)
                    .seed(1)
                    .budget(MemoryBudget::unlimited())
                    .variant(Variant::Approx {
                        truncation_rate: 0.2,
                    }),
            )
            .unwrap()
            .fit(&x)
            .unwrap();
            black_box(fit.stats.final_error)
        })
    });

    let base = BaselineOptions::new(ranks.clone())
        .max_iters(iters)
        .tol(0.0)
        .threads(1)
        .seed(1)
        .budget(MemoryBudget::unlimited());
    group.bench_function("tucker_csf", |b| {
        b.iter(|| black_box(tucker_csf(&x, &base).unwrap().stats.final_error))
    });
    group.bench_function("s_hot", |b| {
        b.iter(|| black_box(s_hot(&x, &base).unwrap().stats.final_error))
    });
    group.bench_function("tucker_wopt", |b| {
        b.iter(|| black_box(tucker_wopt(&x, &base).unwrap().stats.final_error))
    });
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
