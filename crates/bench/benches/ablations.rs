//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * **Row solve**: Cholesky solve vs. the paper's literal "find the
//!   inverse matrix" (LU inverse then multiply) for `(B + λI) x = c`.
//! * **Dynamic-schedule chunk size**: steal-granularity sweep for the
//!   row-update scheduler.
//! * **Observed-entry sampling** (`sample_stride`, the paper's future-work
//!   item): fit time as the per-row entry sample thins.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ptucker::{FitOptions, MemoryBudget, PTucker, Schedule};
use ptucker_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_row_solve(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("row_solve");
    for &j in &[3usize, 10] {
        // A representative SPD normal-equation matrix B + λI.
        let a = Matrix::from_vec(j, j, (0..j * j).map(|_| rng.gen::<f64>()).collect()).unwrap();
        let mut b = a.gram();
        b.add_diagonal_mut(0.01);
        let cvec: Vec<f64> = (0..j).map(|_| rng.gen()).collect();
        group.bench_with_input(BenchmarkId::new("cholesky_solve", j), &j, |bch, _| {
            bch.iter(|| black_box(b.cholesky().unwrap().solve(&cvec)))
        });
        group.bench_with_input(
            BenchmarkId::new("explicit_inverse_paper", j),
            &j,
            |bch, _| {
                bch.iter(|| {
                    // The paper's Algorithm 3 line 14-15: invert, then
                    // multiply c by the inverse.
                    let inv = b.lu().unwrap().inverse();
                    black_box(inv.vecmat(&cvec))
                })
            },
        );
    }
    group.finish();
}

fn bench_schedule_chunks(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    // Skewed slices (Zipf users) make the chunk size matter.
    let sim = ptucker_datagen::realworld::movielens(0.001, &mut rng);
    let x = sim.tensor;
    let mut group = c.benchmark_group("schedule_chunk");
    group.sample_size(10);
    for &chunk in &[1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, _| {
            b.iter(|| {
                let fit = PTucker::new(
                    FitOptions::new(vec![4, 4, 4, 4])
                        .max_iters(1)
                        .tol(0.0)
                        .threads(2)
                        .seed(1)
                        .budget(MemoryBudget::unlimited())
                        .schedule(Schedule::Dynamic { chunk }),
                )
                .unwrap()
                .fit(&x)
                .unwrap();
                black_box(fit.stats.final_error)
            })
        });
    }
    group.finish();
}

fn bench_sample_stride(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let x = ptucker_datagen::uniform_sparse(&[80, 70, 60], 8_000, &mut rng);
    let mut group = c.benchmark_group("sample_stride");
    group.sample_size(10);
    for &stride in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(stride), &stride, |b, _| {
            b.iter(|| {
                let fit = PTucker::new(
                    FitOptions::new(vec![4, 4, 4])
                        .max_iters(2)
                        .tol(0.0)
                        .threads(1)
                        .seed(1)
                        .budget(MemoryBudget::unlimited())
                        .sample_stride(stride),
                )
                .unwrap()
                .fit(&x)
                .unwrap();
                black_box(fit.stats.final_error)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_row_solve,
    bench_schedule_chunks,
    bench_sample_stride
);
criterion_main!(benches);
