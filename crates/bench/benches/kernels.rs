//! Criterion microbenchmarks of the hot kernels: the linear-algebra
//! routines P-Tucker leans on (Cholesky/LU/QR/eigen at the paper's J
//! sizes), the engine's row update (direct vs cached kernel — the perf
//! baseline future PRs regress against), and the CSF TTMc against a
//! brute-force Kronecker accumulation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ptucker::engine::{CachedKernel, DirectKernel, ModeContext, RowUpdateKernel, Scratch};
use ptucker::FitOptions;
use ptucker_baselines::CsfTensor;
use ptucker_linalg::{leading_left_singular_vectors, sym_eigen, Matrix};
use ptucker_tensor::CoreTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_spd(n: usize, rng: &mut StdRng) -> Matrix {
    let a = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.gen::<f64>()).collect()).unwrap();
    let mut g = a.gram();
    g.add_diagonal_mut(0.1 * n as f64);
    g
}

fn bench_linalg(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("linalg");
    for &j in &[3usize, 5, 10] {
        let spd = random_spd(j, &mut rng);
        let rhs: Vec<f64> = (0..j).map(|_| rng.gen()).collect();
        group.bench_with_input(BenchmarkId::new("cholesky_solve", j), &j, |b, _| {
            b.iter(|| {
                let ch = spd.cholesky().unwrap();
                black_box(ch.solve(&rhs))
            })
        });
        group.bench_with_input(BenchmarkId::new("lu_inverse", j), &j, |b, _| {
            b.iter(|| black_box(spd.lu().unwrap().inverse()))
        });
        group.bench_with_input(BenchmarkId::new("jacobi_eigen", j), &j, |b, _| {
            b.iter(|| black_box(sym_eigen(&spd).unwrap()))
        });
    }
    // Tall QR at a factor-matrix shape and the Gram SVD the baselines use.
    let tall = Matrix::from_vec(500, 10, (0..5000).map(|_| rng.gen::<f64>()).collect()).unwrap();
    group.bench_function("qr_500x10", |b| b.iter(|| black_box(tall.qr().unwrap())));
    group.bench_function("gram_svd_500x10_k5", |b| {
        b.iter(|| black_box(leading_left_singular_vectors(&tall, 5).unwrap()))
    });
    group.finish();
}

/// The engine row-update guard: one full mode-0 row sweep (accumulate the
/// normal equations over each row's slice, solve in the scratch arena) at
/// the paper's rank scales, for the Direct and Cached kernels. The inner
/// loop is the exact code `PTucker::fit` monomorphizes, so a regression
/// here is a regression in every fit.
fn bench_row_update(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let dims = [32usize, 24, 16];
    let x = ptucker_datagen::uniform_sparse(&dims, 400, &mut rng);
    let mut group = c.benchmark_group("row_update");
    group.sample_size(10);
    for &j in &[5usize, 10, 20] {
        let factors: Vec<Matrix> = dims
            .iter()
            .map(|&d| {
                Matrix::from_vec(d, j, (0..d * j).map(|_| rng.gen::<f64>()).collect()).unwrap()
            })
            .collect();
        let core = CoreTensor::random_dense(vec![j, j, j], &mut rng).unwrap();
        let opts = FitOptions::new(vec![j, j, j]).lambda(0.01);
        let ctx = ModeContext::new(&x, &factors, &core, 0, &opts);

        group.bench_with_input(BenchmarkId::new("direct", j), &j, |b, _| {
            let mut scratch = Scratch::new(j);
            let mut row = vec![0.0; j];
            b.iter(|| {
                for i in 0..dims[0] {
                    row.copy_from_slice(factors[0].row(i));
                    black_box(DirectKernel.update_row(&ctx, &mut scratch, i, &mut row));
                }
            })
        });

        let mut cached = CachedKernel::new();
        cached.prepare_fit(&x, &factors, &core, &opts).unwrap();
        group.bench_with_input(BenchmarkId::new("cached", j), &j, |b, _| {
            let mut scratch = Scratch::new(j);
            let mut row = vec![0.0; j];
            b.iter(|| {
                for i in 0..dims[0] {
                    row.copy_from_slice(factors[0].row(i));
                    black_box(cached.update_row(&ctx, &mut scratch, i, &mut row));
                }
            })
        });
    }
    group.finish();
}

fn bench_ttmc(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = ptucker_datagen::uniform_sparse(&[200, 150, 100], 5_000, &mut rng);
    let factors: Vec<Matrix> = x
        .dims()
        .iter()
        .map(|&d| Matrix::from_vec(d, 5, (0..d * 5).map(|_| rng.gen::<f64>()).collect()).unwrap())
        .collect();
    let csf = CsfTensor::new(&x, 0);
    let mut group = c.benchmark_group("ttmc");
    group.bench_function("csf_mode0_5k_nnz_j5", |b| {
        let mut y = Matrix::zeros(x.dims()[0], 25);
        b.iter(|| {
            csf.ttmc(&factors, &mut y, 1);
            black_box(&y);
        })
    });
    // Brute force: per-nonzero Kronecker accumulation (what CSF avoids).
    group.bench_function("bruteforce_mode0_5k_nnz_j5", |b| {
        let mut y = Matrix::zeros(x.dims()[0], 25);
        b.iter(|| {
            y.as_mut_slice().fill(0.0);
            for (idx, v) in x.iter() {
                let r1 = factors[1].row(idx[1]);
                let r2 = factors[2].row(idx[2]);
                for (a, &v1) in r1.iter().enumerate() {
                    for (bcol, &v2) in r2.iter().enumerate() {
                        y[(idx[0], a * 5 + bcol)] += v * v1 * v2;
                    }
                }
            }
            black_box(&y);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_linalg, bench_row_update, bench_ttmc);
criterion_main!(benches);
