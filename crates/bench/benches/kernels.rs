//! Criterion microbenchmarks of the hot kernels: the linear-algebra
//! routines P-Tucker leans on (Cholesky/LU/QR/eigen at the paper's J
//! sizes), the engine's row update — **COO gather baseline vs the
//! prefix-reused scalar kernel vs the run-blocked micro-kernel** for the
//! Direct path, the Cached kernel's sweep with a **COO-ordered vs
//! stream-ordered Pres table**, and the CSF TTMc against a brute-force
//! Kronecker accumulation.
//!
//! Besides the stdout report, the run emits `BENCH_kernels.json` at the
//! workspace root: the gather/scalar/blocked and COO-vs-stream cached
//! medians at J ∈ {5, 10, 20}, the perf artifact CI (and future PRs)
//! regress against. The `gather_ns`/`stream_direct_ns`/`speedup` fields
//! keep their PR 2 meaning (`stream_direct` is whatever kernel
//! `PTucker::fit` actually runs) so the trajectory stays comparable. A
//! `windowed_fit` series prices the out-of-core path: the same Direct
//! fit in-memory vs through spilled slice-aligned windows.
//!
//! Two mixed-precision series ride along: `mixed_precision` compares the
//! Cached sweep with f32 vs f64 Pres/value storage (resident row sweeps
//! and fully spilled fits, J ∈ {5, 10, 20}), and `avx512_kernels` prices
//! the dispatched dot/axpy/div-add primitives (including the widening
//! f32-input variants) against hand-rolled scalar loops, recording which
//! SIMD tier the binary was built with and whether the CPU has `avx512f`.
//!
//! A `serve_queries` series prices the read path end to end: batched
//! point and top-K queries against a live `ptucker-serve` socket, with
//! per-request p50/p99 latency and per-query throughput.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use ptucker::engine::{CachedKernel, DirectKernel, ModeContext, RowUpdateKernel, Scratch};
use ptucker::{FitOptions, MemoryBudget, PTucker, StoragePrecision, Variant};
use ptucker_baselines::CsfTensor;
use ptucker_linalg::kernels;
use ptucker_linalg::{leading_left_singular_vectors, sym_eigen, Matrix};
use ptucker_tensor::{CoreTensor, ModeStreams, SparseTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn random_spd(n: usize, rng: &mut StdRng) -> Matrix {
    let a = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.gen::<f64>()).collect()).unwrap();
    let mut g = a.gram();
    g.add_diagonal_mut(0.1 * n as f64);
    g
}

fn bench_linalg(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("linalg");
    for &j in &[3usize, 5, 10] {
        let spd = random_spd(j, &mut rng);
        let rhs: Vec<f64> = (0..j).map(|_| rng.gen()).collect();
        group.bench_with_input(BenchmarkId::new("cholesky_solve", j), &j, |b, _| {
            b.iter(|| {
                let ch = spd.cholesky().unwrap();
                black_box(ch.solve(&rhs))
            })
        });
        group.bench_with_input(BenchmarkId::new("lu_inverse", j), &j, |b, _| {
            b.iter(|| black_box(spd.lu().unwrap().inverse()))
        });
        group.bench_with_input(BenchmarkId::new("jacobi_eigen", j), &j, |b, _| {
            b.iter(|| black_box(sym_eigen(&spd).unwrap()))
        });
    }
    // Tall QR at a factor-matrix shape and the Gram SVD the baselines use.
    let tall = Matrix::from_vec(500, 10, (0..5000).map(|_| rng.gen::<f64>()).collect()).unwrap();
    group.bench_function("qr_500x10", |b| b.iter(|| black_box(tall.qr().unwrap())));
    group.bench_function("gram_svd_500x10_k5", |b| {
        b.iter(|| black_box(leading_left_singular_vectors(&tall, 5).unwrap()))
    });
    group.finish();
}

/// The benchmark fixture shared by the criterion group and the JSON
/// artifact: one mode-0 row sweep at rank `j` on a fixed tensor.
struct RowUpdateFixture {
    x: SparseTensor,
    plan: ModeStreams,
    factors: Vec<Matrix>,
    core: CoreTensor,
    opts: FitOptions,
    j: usize,
}

impl RowUpdateFixture {
    fn new(j: usize, rng: &mut StdRng) -> Self {
        Self::new_at(j, rng, StoragePrecision::F64)
    }

    /// Like [`RowUpdateFixture::new`] but with the plan values and the
    /// Cached kernel's Pres table stored at `precision` (the
    /// `mixed_precision` series builds one fixture per precision).
    fn new_at(j: usize, rng: &mut StdRng, precision: StoragePrecision) -> Self {
        let dims = [32usize, 24, 16];
        let x = ptucker_datagen::uniform_sparse(&dims, 400, rng);
        let plan = ModeStreams::build_at(&x, precision).unwrap();
        let factors: Vec<Matrix> = dims
            .iter()
            .map(|&d| {
                Matrix::from_vec(d, j, (0..d * j).map(|_| rng.gen::<f64>()).collect()).unwrap()
            })
            .collect();
        let core = CoreTensor::random_dense(vec![j, j, j], rng).unwrap();
        let opts = FitOptions::new(vec![j, j, j])
            .lambda(0.01)
            .precision(precision);
        RowUpdateFixture {
            x,
            plan,
            factors,
            core,
            opts,
            j,
        }
    }

    /// The pre-plan baseline: δ gathered per entry id through the COO
    /// `ModeIndex`, full `N−1` factor product per `(entry, core-entry)`
    /// pair — exactly the row update this PR replaced, hand-rolled through
    /// the public scratch API.
    fn gather_row_sweep(&self, scratch: &mut Scratch, row: &mut [f64]) {
        let j = self.j;
        let order = self.x.order();
        let core_idx = self.core.flat_indices();
        let core_vals = self.core.values();
        for i in 0..self.x.dims()[0] {
            row.copy_from_slice(self.factors[0].row(i));
            let slice = self.x.slice(0, i);
            if slice.is_empty() {
                row.fill(0.0);
                continue;
            }
            {
                let (delta, c, b_upper) = scratch.accumulators(j);
                for &e in slice {
                    let idx = self.x.index(e);
                    delta.fill(0.0);
                    for (b, &g) in core_vals.iter().enumerate() {
                        let beta = &core_idx[b * order..(b + 1) * order];
                        let mut w = g;
                        for (k, factor) in self.factors.iter().enumerate() {
                            if k == 0 {
                                continue;
                            }
                            w *= factor[(idx[k], beta[k])];
                            if w == 0.0 {
                                break;
                            }
                        }
                        if w != 0.0 {
                            delta[beta[0]] += w;
                        }
                    }
                    let xv = self.x.value(e);
                    for j1 in 0..j {
                        let d1 = delta[j1];
                        c[j1] += xv * d1;
                        if d1 == 0.0 {
                            continue;
                        }
                        for j2 in j1..j {
                            b_upper[j1 * j + j2] += d1 * delta[j2];
                        }
                    }
                }
            }
            black_box(scratch.solve(j, self.opts.lambda, row));
        }
    }

    /// The streamed plan: the exact monomorphized code `PTucker::fit` runs.
    fn stream_row_sweep<K: RowUpdateKernel>(
        &self,
        kernel: &K,
        scratch: &mut Scratch,
        row: &mut [f64],
    ) {
        let ctx = ModeContext::new(&self.plan, &self.factors, &self.core, 0, &self.opts);
        for i in 0..self.x.dims()[0] {
            row.copy_from_slice(self.factors[0].row(i));
            black_box(kernel.update_row(&ctx, scratch, i, row));
        }
    }

    /// The PR 2 kernel this PR replaced: the prefix-reused **scalar** δ on
    /// the streamed plan — a per-core-entry prefix stack, ~1 amortized
    /// multiply per (entry, core-entry) pair, no run blocking — hand-rolled
    /// through the public scratch/stream APIs for the scalar-vs-blocked
    /// comparison.
    fn scalar_lex_row_sweep(&self, scratch: &mut Scratch, row: &mut [f64]) {
        let j = self.j;
        let order = self.x.order();
        let core_idx = self.core.flat_indices();
        let core_vals = self.core.values();
        let stream = self.plan.mode(0);
        let values = stream.values();
        let others_flat = stream.others_flat();
        let k_others = stream.other_count();
        for i in 0..self.x.dims()[0] {
            row.copy_from_slice(self.factors[0].row(i));
            let range = stream.slice_range(i);
            if range.is_empty() {
                row.fill(0.0);
                continue;
            }
            {
                let (delta, c, b_upper) = scratch.accumulators(j);
                for pos in range {
                    let others = &others_flat[pos * k_others..(pos + 1) * k_others];
                    delta.fill(0.0);
                    let mut rows: [&[f64]; 16] = [&[]; 16];
                    for k in 1..order {
                        rows[k - 1] = self.factors[k].row(others[k - 1] as usize);
                    }
                    let mut prefix = [1.0f64; 17];
                    let mut prev: &[usize] = &[];
                    for (b, &g) in core_vals.iter().enumerate() {
                        let beta = &core_idx[b * order..(b + 1) * order];
                        let mut p = 0;
                        while p < prev.len() && prev[p] == beta[p] {
                            p += 1;
                        }
                        for d in p..order {
                            let a = if d == 0 { 1.0 } else { rows[d - 1][beta[d]] };
                            prefix[d + 1] = prefix[d] * a;
                        }
                        delta[beta[0]] += g * prefix[order];
                        prev = beta;
                    }
                    let xv = values.at(pos);
                    for j1 in 0..j {
                        let d1 = delta[j1];
                        c[j1] += xv * d1;
                        if d1 == 0.0 {
                            continue;
                        }
                        for j2 in j1..j {
                            b_upper[j1 * j + j2] += d1 * delta[j2];
                        }
                    }
                }
            }
            black_box(scratch.solve(j, self.opts.lambda, row));
        }
    }

    /// The pre-PR Cached sweep: the Pres table in **COO entry order**,
    /// indirected through the stream's entry-id map per position — exactly
    /// the access pattern the stream-ordered table removed, hand-rolled
    /// over a locally built table.
    fn coo_cached_row_sweep(&self, table: &[f64], scratch: &mut Scratch, row: &mut [f64]) {
        let j = self.j;
        let order = self.x.order();
        let g = self.core.nnz();
        let core_idx = self.core.flat_indices();
        let core_vals = self.core.values();
        let stream = self.plan.mode(0);
        let values = stream.values();
        let others_flat = stream.others_flat();
        let k_others = stream.other_count();
        for i in 0..self.x.dims()[0] {
            row.copy_from_slice(self.factors[0].row(i));
            let range = stream.slice_range(i);
            if range.is_empty() {
                row.fill(0.0);
                continue;
            }
            {
                let (delta, c, b_upper) = scratch.accumulators(j);
                for pos in range {
                    let e = stream.entry_id(pos);
                    let others = &others_flat[pos * k_others..(pos + 1) * k_others];
                    let pres = &table[e * g..(e + 1) * g];
                    delta.fill(0.0);
                    let old_row = self.factors[0].row(i);
                    for (b, &cached) in pres.iter().enumerate() {
                        let beta = &core_idx[b * order..(b + 1) * order];
                        let j_n = beta[0];
                        let a = old_row[j_n];
                        if a != 0.0 {
                            delta[j_n] += cached / a;
                        } else {
                            let mut w = core_vals[b];
                            for k in 1..order {
                                w *= self.factors[k][(others[k - 1] as usize, beta[k])];
                                if w == 0.0 {
                                    break;
                                }
                            }
                            delta[j_n] += w;
                        }
                    }
                    let xv = values.at(pos);
                    for j1 in 0..j {
                        let d1 = delta[j1];
                        c[j1] += xv * d1;
                        if d1 == 0.0 {
                            continue;
                        }
                        for j2 in j1..j {
                            b_upper[j1 * j + j2] += d1 * delta[j2];
                        }
                    }
                }
            }
            black_box(scratch.solve(j, self.opts.lambda, row));
        }
    }

    /// Builds the COO-ordered `|Ω|×|G|` Pres table the pre-PR cached sweep
    /// reads (through public APIs; the engine's own table is stream-ordered
    /// and private).
    fn build_coo_table(&self) -> Vec<f64> {
        let g = self.core.nnz();
        let order = self.x.order();
        let mut table = vec![0.0f64; self.x.nnz() * g];
        for e in 0..self.x.nnz() {
            let idx = self.x.index(e);
            for b in 0..g {
                let beta = self.core.index(b);
                let mut w = self.core.value(b);
                for k in 0..order {
                    w *= self.factors[k][(idx[k], beta[k])];
                    if w == 0.0 {
                        break;
                    }
                }
                table[e * g + b] = w;
            }
        }
        table
    }
}

/// The engine row-update guard: one full mode-0 row sweep (accumulate the
/// normal equations over each row's slice, solve in the scratch arena) at
/// the paper's rank scales. `gather` is the replaced COO entry-id path;
/// `scalar_lex` is PR 2's prefix-reused scalar kernel on the plan;
/// `stream_direct` is the run-blocked micro-kernel `PTucker::fit` runs
/// now; `coo_cached`/`stream_cached` compare the Cached sweep with a
/// COO-ordered vs stream-ordered Pres table. A regression here is a
/// regression in every fit.
fn bench_row_update(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("row_update");
    group.sample_size(10);
    for &j in &[5usize, 10, 20] {
        let fx = RowUpdateFixture::new(j, &mut rng);

        group.bench_with_input(BenchmarkId::new("gather", j), &j, |b, _| {
            let mut scratch = Scratch::new(j);
            let mut row = vec![0.0; j];
            b.iter(|| fx.gather_row_sweep(&mut scratch, &mut row))
        });

        group.bench_with_input(BenchmarkId::new("scalar_lex", j), &j, |b, _| {
            let mut scratch = Scratch::new(j);
            let mut row = vec![0.0; j];
            b.iter(|| fx.scalar_lex_row_sweep(&mut scratch, &mut row))
        });

        group.bench_with_input(BenchmarkId::new("stream_direct", j), &j, |b, _| {
            let mut scratch = Scratch::new(j);
            let mut row = vec![0.0; j];
            b.iter(|| fx.stream_row_sweep(&DirectKernel, &mut scratch, &mut row))
        });

        let coo_table = fx.build_coo_table();
        group.bench_with_input(BenchmarkId::new("coo_cached", j), &j, |b, _| {
            let mut scratch = Scratch::new(j);
            let mut row = vec![0.0; j];
            b.iter(|| fx.coo_cached_row_sweep(&coo_table, &mut scratch, &mut row))
        });

        let mut cached = CachedKernel::new();
        let mut sweep = fx.plan.sweep_source(0, usize::MAX, false);
        cached
            .prepare_fit(
                &ptucker::FitInput::Resident(&fx.x),
                &fx.plan,
                &fx.factors,
                &fx.core,
                &fx.opts,
                &mut sweep,
                false,
            )
            .unwrap();
        group.bench_with_input(BenchmarkId::new("stream_cached", j), &j, |b, _| {
            let mut scratch = Scratch::new(j);
            let mut row = vec![0.0; j];
            b.iter(|| fx.stream_row_sweep(&cached, &mut scratch, &mut row))
        });
    }
    group.finish();
}

fn bench_ttmc(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = ptucker_datagen::uniform_sparse(&[200, 150, 100], 5_000, &mut rng);
    let factors: Vec<Matrix> = x
        .dims()
        .iter()
        .map(|&d| Matrix::from_vec(d, 5, (0..d * 5).map(|_| rng.gen::<f64>()).collect()).unwrap())
        .collect();
    let csf = CsfTensor::new(&x, 0);
    let mut group = c.benchmark_group("ttmc");
    group.bench_function("csf_mode0_5k_nnz_j5", |b| {
        let mut y = Matrix::zeros(x.dims()[0], 25);
        b.iter(|| {
            csf.ttmc(&factors, &mut y, 1);
            black_box(&y);
        })
    });
    // Brute force: per-nonzero Kronecker accumulation (what CSF avoids).
    group.bench_function("bruteforce_mode0_5k_nnz_j5", |b| {
        let mut y = Matrix::zeros(x.dims()[0], 25);
        b.iter(|| {
            y.as_mut_slice().fill(0.0);
            for (idx, v) in x.iter() {
                let r1 = factors[1].row(idx[1]);
                let r2 = factors[2].row(idx[2]);
                for (a, &v1) in r1.iter().enumerate() {
                    for (bcol, &v2) in r2.iter().enumerate() {
                        y[(idx[0], a * 5 + bcol)] += v * v1 * v2;
                    }
                }
            }
            black_box(&y);
        })
    });
    group.finish();
}

/// Median ns of `f` over `samples` timed runs, auto-calibrated so each run
/// is long enough to measure.
fn median_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed().as_millis() >= 10 || iters >= 1 << 16 {
            break;
        }
        iters *= 4;
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Writes the kernel perf artifact (`BENCH_kernels.json` at the workspace
/// root): per J, the median ns of one full mode-0 row sweep on
///
/// * the COO gather baseline, PR 2's prefix-reused scalar kernel and the
///   run-blocked micro-kernel (`stream_direct` — what `PTucker::fit`
///   runs), with `speedup` = gather/blocked (the PR 2 series, directly
///   comparable) and `speedup_vs_scalar` = scalar/blocked, and
/// * the Cached sweep with a COO-ordered vs stream-ordered Pres table.
///
/// Acceptance bars: `speedup ≥ 1.5` at J = 20 and a cached-sweep speedup
/// above 1 at every J.
fn write_artifact() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut lines = Vec::new();
    for &j in &[5usize, 10, 20] {
        let fx = RowUpdateFixture::new(j, &mut rng);
        let mut scratch = Scratch::new(j);
        let mut row = vec![0.0; j];
        let gather = median_ns(15, || fx.gather_row_sweep(&mut scratch, &mut row));
        let scalar = median_ns(15, || fx.scalar_lex_row_sweep(&mut scratch, &mut row));
        let stream = median_ns(15, || {
            fx.stream_row_sweep(&DirectKernel, &mut scratch, &mut row)
        });
        let speedup = gather / stream;
        let vs_scalar = scalar / stream;
        println!(
            "artifact row_update j={j}: gather {gather:.0} ns, scalar {scalar:.0} ns, \
             blocked {stream:.0} ns, speedup {speedup:.2}x (vs scalar {vs_scalar:.2}x)"
        );
        lines.push(format!(
            "    {{\"bench\": \"row_update_mode0_sweep\", \"j\": {j}, \
             \"gather_ns\": {gather:.1}, \"scalar_lex_ns\": {scalar:.1}, \
             \"stream_direct_ns\": {stream:.1}, \"speedup\": {speedup:.3}, \
             \"speedup_vs_scalar\": {vs_scalar:.3}}}"
        ));

        let coo_table = fx.build_coo_table();
        let coo = median_ns(15, || {
            fx.coo_cached_row_sweep(&coo_table, &mut scratch, &mut row)
        });
        let mut cached = CachedKernel::new();
        let mut sweep = fx.plan.sweep_source(0, usize::MAX, false);
        cached
            .prepare_fit(
                &ptucker::FitInput::Resident(&fx.x),
                &fx.plan,
                &fx.factors,
                &fx.core,
                &fx.opts,
                &mut sweep,
                false,
            )
            .unwrap();
        let streamed = median_ns(15, || fx.stream_row_sweep(&cached, &mut scratch, &mut row));
        let cached_speedup = coo / streamed;
        println!(
            "artifact cached_sweep j={j}: coo {coo:.0} ns, stream {streamed:.0} ns, \
             speedup {cached_speedup:.2}x"
        );
        lines.push(format!(
            "    {{\"bench\": \"cached_sweep_mode0\", \"j\": {j}, \
             \"coo_table_ns\": {coo:.1}, \"stream_table_ns\": {streamed:.1}, \
             \"speedup\": {cached_speedup:.3}}}"
        ));
    }

    // Out-of-core overhead: the same Direct fit in-memory vs through
    // spilled windowed sweeps (a 1-byte budget forces the minimum window
    // capacity — the worst case for windowing overhead; windows this
    // small read synchronously, prefetch or not). The trajectories are
    // bitwise identical; this series prices the scratch-file I/O.
    {
        let mut rng = StdRng::seed_from_u64(4);
        let x = ptucker_datagen::uniform_sparse(&[32, 24, 16], 400, &mut rng);
        let opts = |budget: MemoryBudget| {
            FitOptions::new(vec![5, 5, 5])
                .max_iters(2)
                .tol(0.0)
                .threads(1)
                .seed(7)
                .budget(budget)
        };
        let in_memory = median_ns(5, || {
            let fit = PTucker::new(opts(MemoryBudget::unlimited()))
                .unwrap()
                .fit(&x)
                .unwrap();
            assert_eq!(fit.stats.peak_spilled_bytes, 0);
            black_box(fit);
        });
        let windowed = median_ns(5, || {
            let fit = PTucker::new(opts(MemoryBudget::new(1)))
                .unwrap()
                .fit(&x)
                .unwrap();
            assert!(fit.stats.peak_spilled_bytes > 0);
            black_box(fit);
        });
        let overhead = windowed / in_memory;
        println!(
            "artifact windowed_fit j=5: in-memory {in_memory:.0} ns, \
             windowed {windowed:.0} ns, overhead {overhead:.2}x"
        );
        lines.push(format!(
            "    {{\"bench\": \"windowed_fit\", \"j\": 5, \
             \"in_memory_ns\": {in_memory:.1}, \"windowed_ns\": {windowed:.1}, \
             \"overhead\": {overhead:.3}}}"
        ));
    }

    // Double-buffering: a larger spilled fit run with prefetch requested
    // vs off. The `overhead` fields are relative to the same fit fully
    // in memory, so the prefetch-on figure is directly comparable to the
    // single-buffer `windowed_fit` series above. Prefetch self-gates:
    // it only engages when the halved windows still clear the 128 KiB
    // amortization threshold AND a second hardware thread exists for the
    // refill to ride (recorded as `cpus`) — otherwise the requested-on
    // column falls back to the identical single-buffer path, so it can
    // never lose to the single buffer it replaces. On this fixture at a
    // quarter-plan budget the double-buffered windows are ~60 KiB, below
    // the threshold — exactly the configuration that used to regress 6%.
    {
        let mut rng = StdRng::seed_from_u64(9);
        let x = ptucker_datagen::uniform_sparse(&[96, 72, 48], 20_000, &mut rng);
        let plan_bytes = ModeStreams::bytes_for(&x);
        let opts = |budget: MemoryBudget, prefetch: bool| {
            FitOptions::new(vec![5, 5, 5])
                .max_iters(2)
                .tol(0.0)
                .threads(2)
                .seed(7)
                .prefetch(prefetch)
                .budget(budget)
        };
        let in_memory = median_ns(5, || {
            let fit = PTucker::new(opts(MemoryBudget::unlimited(), true))
                .unwrap()
                .fit(&x)
                .unwrap();
            assert_eq!(fit.stats.peak_spilled_bytes, 0);
            black_box(fit);
        });
        // A quarter of the plan: several multi-slice windows per mode,
        // each window read hundreds of KiB.
        let budget = plan_bytes / 4;
        let spilled_once = |prefetch: bool| {
            let t = Instant::now();
            let fit = PTucker::new(opts(MemoryBudget::new(budget), prefetch))
                .unwrap()
                .fit(&x)
                .unwrap();
            assert!(fit.stats.peak_spilled_bytes > 0);
            let engaged = fit.stats.prefetch_engaged;
            black_box(fit);
            (t.elapsed().as_nanos() as f64, engaged)
        };
        // One untimed run warms the page cache and reports whether the
        // gate engaged prefetch at all on this host/fixture.
        let (_, engaged) = spilled_once(true);
        let med = |mut runs: Vec<f64>| {
            runs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            runs[runs.len() / 2]
        };
        let (single, double) = if engaged {
            // The two spilled columns are sampled as back-to-back *pairs*
            // (single, then prefetch) and the prefetch column is derived
            // from the median per-pair ratio — shared-host drift
            // (page-cache warming, background load) moves both halves of
            // a pair together, so the ratio is far more stable than two
            // independently-sampled medians.
            let mut single_runs = Vec::new();
            let mut pair_ratios = Vec::new();
            for _ in 0..7 {
                let (s, _) = spilled_once(false);
                let (d, _) = spilled_once(true);
                single_runs.push(s);
                pair_ratios.push(d / s);
            }
            let single = med(single_runs);
            (single, single * med(pair_ratios))
        } else {
            // The gate declined prefetch (windows below the threshold or
            // no spare hardware thread), so "prefetch requested" executes
            // the identical single-buffer path — any measured difference
            // between the two columns would be pure noise reported as
            // signal. Pool every sample into one median for both columns.
            let mut runs = Vec::new();
            for _ in 0..5 {
                runs.push(spilled_once(false).0);
                runs.push(spilled_once(true).0);
            }
            let pooled = med(runs);
            (pooled, pooled)
        };
        let overhead_single = single / in_memory;
        let overhead_double = double / in_memory;
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        println!(
            "artifact windowed_fit_prefetch j=5: in-memory {in_memory:.0} ns, \
             single-buffer {single:.0} ns ({overhead_single:.2}x), \
             prefetch-requested {double:.0} ns ({overhead_double:.2}x), \
             engaged {engaged}, {cpus} cpu(s)"
        );
        lines.push(format!(
            "    {{\"bench\": \"windowed_fit_prefetch\", \"j\": 5, \
             \"in_memory_ns\": {in_memory:.1}, \"single_buffer_ns\": {single:.1}, \
             \"double_buffer_ns\": {double:.1}, \"overhead_single\": {overhead_single:.3}, \
             \"overhead\": {overhead_double:.3}, \"prefetch_engaged\": {engaged}, \
             \"cpus\": {cpus}}}"
        ));
    }

    // External-sort build: pricing the disk-to-disk plan path. Three
    // columns over the same ~20k-entry tensor — the fully resident build,
    // the resident-source spilled build, and the external-sort build from
    // a COO scratch file (sorted runs + K-way merge under a floor-sized
    // arena) — plus the byte volumes that explain them: the COO source,
    // the spilled plan, and the total scratch traffic the external build
    // performed. The output is bitwise-identical across the last two
    // (asserted by the tensor crate's proptests), so the overhead column
    // is the whole story.
    {
        let mut rng = StdRng::seed_from_u64(9);
        let x = ptucker_datagen::uniform_sparse(&[96, 72, 48], 20_000, &mut rng);
        let resident_ns = median_ns(7, || {
            black_box(ModeStreams::build(&x).unwrap());
        });
        let spilled_ns = median_ns(7, || {
            black_box(ModeStreams::build_spilled(&x, &MemoryBudget::unlimited()).unwrap());
        });
        let budget = MemoryBudget::new(1); // floor-sized sort arena
        let src = ptucker_tensor::CooScratch::from_tensor(&x, &budget).unwrap();
        let coo_bytes = src.bytes();
        let io0 = (budget.io_read_bytes(), budget.io_write_bytes());
        let external_ns = median_ns(7, || {
            black_box(ModeStreams::build_external(&src, &budget).unwrap());
        });
        let io_bytes = (budget.io_read_bytes() - io0.0) + (budget.io_write_bytes() - io0.1);
        let plan_bytes = ModeStreams::spilled_bytes_for(&x);
        let vs_resident = external_ns / resident_ns;
        let vs_spilled = external_ns / spilled_ns;
        println!(
            "artifact external_build nnz={}: resident {resident_ns:.0} ns, \
             spilled {spilled_ns:.0} ns, external {external_ns:.0} ns \
             ({vs_resident:.2}x resident, {vs_spilled:.2}x spilled); \
             coo {coo_bytes} B, plan {plan_bytes} B, scratch traffic {io_bytes} B",
            x.nnz()
        );
        lines.push(format!(
            "    {{\"bench\": \"external_build\", \"nnz\": {}, \
             \"resident_build_ns\": {resident_ns:.1}, \"spilled_build_ns\": {spilled_ns:.1}, \
             \"external_build_ns\": {external_ns:.1}, \"vs_resident\": {vs_resident:.3}, \
             \"vs_spilled\": {vs_spilled:.3}, \"coo_bytes\": {coo_bytes}, \
             \"plan_spill_bytes\": {plan_bytes}, \"io_bytes\": {io_bytes}}}",
            x.nnz()
        ));
    }

    // Prefetch ring depth: the same spilled Direct fit at ring depths 1
    // (no prefetch), 2 (the double-buffer default) and 4, sampled as
    // interleaved triples with per-triple ratios against the depth-2
    // column (shared-host drift moves a triple together, so ratios are
    // stable where independent medians are not). The depth gate
    // self-clamps — a depth whose windows would fall below the 128 KiB
    // amortization floor degrades to the deepest affordable ring — so
    // `depth4_vs_depth2 > 1` here means the extra read-ahead bought
    // nothing on this host, not that it shrank the windows.
    {
        let mut rng = StdRng::seed_from_u64(9);
        let x = ptucker_datagen::uniform_sparse(&[96, 72, 48], 20_000, &mut rng);
        let plan_bytes = ModeStreams::bytes_for(&x);
        let fit_at = |depth: usize| {
            let t = Instant::now();
            let fit = PTucker::new(
                FitOptions::new(vec![5, 5, 5])
                    .max_iters(2)
                    .tol(0.0)
                    .threads(2)
                    .seed(7)
                    .prefetch(depth >= 2)
                    .prefetch_depth(depth.max(2))
                    .budget(MemoryBudget::new(plan_bytes / 4)),
            )
            .unwrap()
            .fit(&x)
            .unwrap();
            assert!(fit.stats.peak_spilled_bytes > 0);
            black_box(fit);
            t.elapsed().as_nanos() as f64
        };
        let med = |mut runs: Vec<f64>| {
            runs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            runs[runs.len() / 2]
        };
        fit_at(2); // warm the page cache
        let mut base_runs = Vec::new();
        let mut r1 = Vec::new();
        let mut r4 = Vec::new();
        for _ in 0..7 {
            let d1 = fit_at(1);
            let d2 = fit_at(2);
            let d4 = fit_at(4);
            base_runs.push(d2);
            r1.push(d1 / d2);
            r4.push(d4 / d2);
        }
        let depth2 = med(base_runs);
        let (ratio1, ratio4) = (med(r1), med(r4));
        let (depth1, depth4) = (depth2 * ratio1, depth2 * ratio4);
        println!(
            "artifact prefetch_depth: depth1 {depth1:.0} ns ({ratio1:.2}x of depth2), \
             depth2 {depth2:.0} ns, depth4 {depth4:.0} ns ({ratio4:.2}x of depth2)"
        );
        for (depth, ns, vs2) in [
            (1usize, depth1, ratio1),
            (2, depth2, 1.0),
            (4, depth4, ratio4),
        ] {
            lines.push(format!(
                "    {{\"bench\": \"prefetch_depth\", \"depth\": {depth}, \
                 \"fit_ns\": {ns:.1}, \"vs_depth2\": {vs2:.3}}}"
            ));
        }
    }

    // Mixed precision: the same Cached sweep with f32 vs f64 storage.
    // `resident` times one mode-0 row sweep against the in-RAM Pres
    // table; `spilled` times a whole 2-iteration Cache-variant fit with a
    // 1-byte budget (plan + table both on disk), where f32 also halves
    // every scratch-file transfer. Accumulation is f64 in both columns —
    // the speedup is pure storage traffic.
    for &j in &[5usize, 10, 20] {
        let mut sweep_ns = [0.0f64; 2];
        let mut fit_ns = [0.0f64; 2];
        for (slot, precision) in [StoragePrecision::F64, StoragePrecision::F32]
            .into_iter()
            .enumerate()
        {
            let mut rng = StdRng::seed_from_u64(3);
            let fx = RowUpdateFixture::new_at(j, &mut rng, precision);
            let mut cached = CachedKernel::new();
            let mut sweep = fx.plan.sweep_source(0, usize::MAX, false);
            cached
                .prepare_fit(
                    &ptucker::FitInput::Resident(&fx.x),
                    &fx.plan,
                    &fx.factors,
                    &fx.core,
                    &fx.opts,
                    &mut sweep,
                    false,
                )
                .unwrap();
            let mut scratch = Scratch::new(j);
            let mut row = vec![0.0; j];
            sweep_ns[slot] = median_ns(15, || fx.stream_row_sweep(&cached, &mut scratch, &mut row));
            // Ranks clamped to the fixture's dims (J = 20 > I₂ = 16).
            let fit_ranks: Vec<usize> = fx.x.dims().iter().map(|&d| j.min(d)).collect();
            fit_ns[slot] = median_ns(5, || {
                let fit = PTucker::new(
                    FitOptions::new(fit_ranks.clone())
                        .max_iters(2)
                        .tol(0.0)
                        .threads(1)
                        .seed(7)
                        .variant(Variant::Cache)
                        .precision(precision)
                        .budget(MemoryBudget::new(1)),
                )
                .unwrap()
                .fit(&fx.x)
                .unwrap();
                assert!(fit.stats.peak_spilled_bytes > 0);
                black_box(fit);
            });
        }
        let resident_speedup = sweep_ns[0] / sweep_ns[1];
        let spilled_speedup = fit_ns[0] / fit_ns[1];
        println!(
            "artifact mixed_precision j={j}: resident f64 {:.0} ns / f32 {:.0} ns \
             ({resident_speedup:.2}x), spilled f64 {:.0} ns / f32 {:.0} ns \
             ({spilled_speedup:.2}x)",
            sweep_ns[0], sweep_ns[1], fit_ns[0], fit_ns[1]
        );
        lines.push(format!(
            "    {{\"bench\": \"mixed_precision\", \"j\": {j}, \"placement\": \"resident\", \
             \"f64_ns\": {:.1}, \"f32_ns\": {:.1}, \"speedup\": {resident_speedup:.3}}}",
            sweep_ns[0], sweep_ns[1]
        ));
        lines.push(format!(
            "    {{\"bench\": \"mixed_precision\", \"j\": {j}, \"placement\": \"spilled\", \
             \"f64_ns\": {:.1}, \"f32_ns\": {:.1}, \"speedup\": {spilled_speedup:.3}}}",
            fit_ns[0], fit_ns[1]
        ));
    }

    // Sharded fit: the K-way row-parallel driver (thread-transport
    // workers — same framed byte protocol as spawned processes, minus
    // the process startup noise) vs the plain single-process fit. Every
    // row is bitwise identical to `solo`; `bytes_moved` is the
    // coordinator's total comms volume (the one-time Plan per worker
    // dominates at this scale — the per-mode steady state is only
    // O(I_n·J) doubles each way). On a shared-memory host the sweep is
    // already thread-parallel, so K>1 prices the orchestration rather
    // than promising speedup; the series exists to track that overhead
    // and the wire volume as both evolve.
    {
        use ptucker_shard::{ShardedFit, WorkerSpawn};
        let mut rng = StdRng::seed_from_u64(12);
        let x = ptucker_datagen::uniform_sparse(&[96, 72, 48], 20_000, &mut rng);
        let opts = FitOptions::new(vec![5, 5, 5])
            .max_iters(2)
            .tol(0.0)
            .threads(2)
            .seed(7);
        let solo_fit = PTucker::new(opts.clone()).unwrap().fit(&x).unwrap();
        let solo = median_ns(3, || {
            black_box(PTucker::new(opts.clone()).unwrap().fit(&x).unwrap());
        });
        for k in [1usize, 2, 4] {
            let sharded = ShardedFit::new(k, WorkerSpawn::Threads);
            let out = sharded.fit(&x, opts.clone()).unwrap();
            assert_eq!(
                out.fit.stats.final_error.to_bits(),
                solo_fit.stats.final_error.to_bits(),
                "sharded K={k} diverged from the single-process fit"
            );
            let bytes_moved = out.fit.stats.bytes_sent + out.fit.stats.bytes_received;
            let wall = median_ns(3, || {
                black_box(sharded.fit(&x, opts.clone()).unwrap());
            });
            let overhead = wall / solo;
            println!(
                "artifact sharded_fit K={k}: solo {solo:.0} ns, sharded {wall:.0} ns \
                 ({overhead:.2}x), {bytes_moved} B moved"
            );
            lines.push(format!(
                "    {{\"bench\": \"sharded_fit\", \"workers\": {k}, \
                 \"solo_ns\": {solo:.1}, \"sharded_ns\": {wall:.1}, \
                 \"overhead\": {overhead:.3}, \"bytes_moved\": {bytes_moved}}}"
            ));
        }
    }

    // Fault-tolerant sharding: what the robustness machinery costs, all
    // runs bitwise identical to the single-process fit.
    // `policy_overhead` prices an *undisturbed* K=2 fit under a fault
    // policy (the coordinator drives the real variant kernel so it can
    // resweep and checkpoint, and every wait is deadline-aware);
    // `reassign`/`respawn` price a worker death — an injected dropped
    // frame, so the deadline machinery (probe → revive → condemn) runs
    // in full, then the coordinator covers the rows and recovers —
    // including the detection timeouts; `checkpoint_c1` prices
    // cadence-1 checkpointing to disk on top of the policy.
    {
        use ptucker_shard::{FaultPolicy, Recovery, ShardedFit, WorkerSpawn};
        use std::time::Duration;
        let mut rng = StdRng::seed_from_u64(13);
        let x = ptucker_datagen::uniform_sparse(&[96, 72, 48], 20_000, &mut rng);
        let opts = FitOptions::new(vec![5, 5, 5])
            .max_iters(2)
            .tol(0.0)
            .threads(2)
            .seed(7);
        let solo_fit = PTucker::new(opts.clone()).unwrap().fit(&x).unwrap();
        let solo = median_ns(3, || {
            black_box(PTucker::new(opts.clone()).unwrap().fit(&x).unwrap());
        });
        let tight = |recovery| FaultPolicy {
            frame_timeout: Duration::from_millis(30),
            worker_retries: 1,
            backoff: Duration::ZERO,
            recovery,
        };
        let ckpt = std::env::temp_dir().join(format!("ptk-bench-ckpt-{}.bin", std::process::id()));
        let cases: [(&str, ShardedFit, FitOptions); 4] = [
            (
                "policy_overhead",
                ShardedFit::new(2, WorkerSpawn::Threads).fault_policy(FaultPolicy::default()),
                opts.clone(),
            ),
            (
                "reassign",
                ShardedFit::new(2, WorkerSpawn::Threads)
                    .fault_policy(tight(Recovery::Reassign))
                    .inject_fault(1, "send:rows:2:drop"),
                opts.clone(),
            ),
            (
                "respawn",
                ShardedFit::new(2, WorkerSpawn::Threads)
                    .fault_policy(tight(Recovery::Respawn))
                    .inject_fault(1, "send:rows:2:drop"),
                opts.clone(),
            ),
            (
                "checkpoint_c1",
                ShardedFit::new(2, WorkerSpawn::Threads).fault_policy(FaultPolicy::default()),
                opts.clone().checkpoint_every(1).checkpoint_path(&ckpt),
            ),
        ];
        for (mode, sharded, run_opts) in cases {
            let out = sharded.fit(&x, run_opts.clone()).unwrap();
            assert_eq!(
                out.fit.stats.final_error.to_bits(),
                solo_fit.stats.final_error.to_bits(),
                "faulted sharded fit ({mode}) diverged from the single-process fit"
            );
            let faulted = mode == "reassign" || mode == "respawn";
            assert_eq!(
                !out.recovered.is_empty(),
                faulted,
                "{mode}: unexpected recovery log {:?}",
                out.recovered
            );
            let wall = median_ns(3, || {
                black_box(sharded.fit(&x, run_opts.clone()).unwrap());
            });
            let overhead = wall / solo;
            println!(
                "artifact sharded_fit_faults {mode}: solo {solo:.0} ns, \
                 fit {wall:.0} ns ({overhead:.2}x)"
            );
            lines.push(format!(
                "    {{\"bench\": \"sharded_fit_faults\", \"mode\": \"{mode}\", \
                 \"workers\": 2, \"solo_ns\": {solo:.1}, \"fit_ns\": {wall:.1}, \
                 \"overhead\": {overhead:.3}}}"
            ));
        }
        let _ = std::fs::remove_file(&ckpt);
    }

    // Serving read path: round-trip latency and throughput of batched
    // point and top-K queries against a live `ptucker-serve` instance
    // over a Unix socket — one client, one connection, requests timed
    // end to end (encode → socket → snapshot lookup → reply decode).
    // `p50_ns`/`p99_ns` are per *request* (one batch); `throughput_per_s`
    // counts individual queries (batch entries) per second. The model is
    // a recommender-shaped rank-8 decomposition; top-K scans all of
    // mode 0's rows per context, so its row count is the work knob.
    {
        use ptucker::{Predictor, TuckerDecomposition};
        use ptucker_serve::{serve, ServeOptions};
        let mut rng = StdRng::seed_from_u64(21);
        let dims = [4096usize, 512, 128];
        let ranks = [8usize, 8, 8];
        let factors: Vec<Matrix> = dims
            .iter()
            .map(|&d| {
                Matrix::from_vec(d, 8, (0..d * 8).map(|_| rng.gen::<f64>() - 0.5).collect())
                    .unwrap()
            })
            .collect();
        let core = CoreTensor::random_dense(ranks.to_vec(), &mut rng).unwrap();
        let predictor = Predictor::new(TuckerDecomposition { factors, core }).unwrap();
        let path =
            std::env::temp_dir().join(format!("ptk-bench-serve-{}.sock", std::process::id()));
        let handle = serve(&path, predictor, ServeOptions::default()).unwrap();
        let mut client = handle.connect().unwrap();

        let percentile = |sorted: &[f64], p: f64| {
            let i = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[i]
        };
        let requests = 400usize;

        // Point queries, 64 entries per request.
        let point_batch = 64usize;
        let point_reqs: Vec<Vec<usize>> = (0..requests)
            .map(|_| {
                (0..point_batch)
                    .flat_map(|_| dims.map(|d| rng.gen_range(0..d)))
                    .collect()
            })
            .collect();
        for req in point_reqs.iter().take(20) {
            client.point_batch(req).unwrap(); // warm-up
        }
        let mut point_ns: Vec<f64> = point_reqs
            .iter()
            .map(|req| {
                let t = Instant::now();
                black_box(client.point_batch(req).unwrap());
                t.elapsed().as_nanos() as f64
            })
            .collect();
        point_ns.sort_by(|a, b| a.total_cmp(b));
        let point_total: f64 = point_ns.iter().sum();
        let point_qps = (requests * point_batch) as f64 * 1e9 / point_total;
        let (p50, p99) = (percentile(&point_ns, 0.5), percentile(&point_ns, 0.99));
        println!(
            "artifact serve_queries point: batch {point_batch}, p50 {p50:.0} ns, \
             p99 {p99:.0} ns, {point_qps:.0} points/s"
        );
        lines.push(format!(
            "    {{\"bench\": \"serve_queries\", \"query\": \"point\", \
             \"batch\": {point_batch}, \"requests\": {requests}, \"p50_ns\": {p50:.1}, \
             \"p99_ns\": {p99:.1}, \"throughput_per_s\": {point_qps:.1}}}"
        ));

        // Top-K queries, 8 contexts per request, K = 10 over mode 0.
        let (mode, k, topk_batch) = (0usize, 10usize, 8usize);
        let topk_reqs: Vec<Vec<usize>> = (0..requests)
            .map(|_| {
                (0..topk_batch)
                    .flat_map(|_| [rng.gen_range(0..dims[1]), rng.gen_range(0..dims[2])])
                    .collect()
            })
            .collect();
        for req in topk_reqs.iter().take(20) {
            client.top_k_batch(mode, req, topk_batch, k).unwrap(); // warm-up
        }
        let mut topk_ns: Vec<f64> = topk_reqs
            .iter()
            .map(|req| {
                let t = Instant::now();
                black_box(client.top_k_batch(mode, req, topk_batch, k).unwrap());
                t.elapsed().as_nanos() as f64
            })
            .collect();
        topk_ns.sort_by(|a, b| a.total_cmp(b));
        let topk_total: f64 = topk_ns.iter().sum();
        let topk_qps = (requests * topk_batch) as f64 * 1e9 / topk_total;
        let (p50, p99) = (percentile(&topk_ns, 0.5), percentile(&topk_ns, 0.99));
        println!(
            "artifact serve_queries topk: rows {}, k {k}, batch {topk_batch}, \
             p50 {p50:.0} ns, p99 {p99:.0} ns, {topk_qps:.0} contexts/s",
            dims[mode]
        );
        lines.push(format!(
            "    {{\"bench\": \"serve_queries\", \"query\": \"topk\", \"rows\": {}, \
             \"k\": {k}, \"batch\": {topk_batch}, \"requests\": {requests}, \
             \"p50_ns\": {p50:.1}, \"p99_ns\": {p99:.1}, \
             \"throughput_per_s\": {topk_qps:.1}}}",
            dims[mode]
        ));

        client.goodbye().unwrap();
        let stats = handle.shutdown().unwrap();
        assert_eq!(stats.worker_panics, 0);
    }

    // SIMD kernel tier: the dispatched primitives vs hand-rolled scalar
    // loops at a bandwidth-visible length. The JSON records which tier the
    // binary was built with (`avx512_built`) and whether this CPU can run
    // it (`avx512_cpu`) — with the feature off or the CPU lacking
    // `avx512f`, the dispatched column *is* the AVX2-or-scalar fallback,
    // which is exactly the fallback-cleanliness claim.
    {
        let n = 4096usize;
        let mut rng = StdRng::seed_from_u64(11);
        let a: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
        let a32: Vec<f32> = a.iter().map(|&v| v as f32).collect();
        let den: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() + 0.5).collect();
        let mut y = vec![0.0f64; n];
        let avx512_built = cfg!(feature = "simd-avx512");
        #[cfg(target_arch = "x86_64")]
        let avx512_cpu = std::arch::is_x86_feature_detected!("avx512f");
        #[cfg(not(target_arch = "x86_64"))]
        let avx512_cpu = false;

        let dot_scalar = median_ns(15, || {
            let mut s = 0.0;
            for i in 0..n {
                s += a[i] * b[i];
            }
            black_box(s);
        });
        let dot_simd = median_ns(15, || {
            black_box(kernels::dot(&a, &b));
        });
        let dot_f32_simd = median_ns(15, || {
            black_box(kernels::dot_f32_f64(&a32, &b));
        });
        let axpy_scalar = median_ns(15, || {
            for i in 0..n {
                y[i] += 1.0001 * a[i];
            }
            black_box(&mut y);
        });
        let axpy_simd = median_ns(15, || {
            kernels::axpy(1.0001, &a, &mut y);
            black_box(&mut y);
        });
        let axpy_f32_simd = median_ns(15, || {
            kernels::axpy_into_f64(1.0001, &a32, &mut y);
            black_box(&mut y);
        });
        let div_scalar = median_ns(15, || {
            for i in 0..n {
                y[i] += a[i] / den[i];
            }
            black_box(&mut y);
        });
        let div_simd = median_ns(15, || {
            black_box(kernels::div_add_nonzero(&mut y, &a, &den));
        });
        let div_f32_simd = median_ns(15, || {
            black_box(kernels::div_add_nonzero_f32(&mut y, &a32, &den));
        });
        for (kernel, scalar, simd, f32_in) in [
            ("dot", dot_scalar, dot_simd, dot_f32_simd),
            ("axpy", axpy_scalar, axpy_simd, axpy_f32_simd),
            ("div_add_nonzero", div_scalar, div_simd, div_f32_simd),
        ] {
            println!(
                "artifact avx512_kernels {kernel} n={n}: scalar {scalar:.0} ns, \
                 dispatched {simd:.0} ns ({:.2}x), f32-input {f32_in:.0} ns \
                 (built avx512: {avx512_built}, cpu avx512f: {avx512_cpu})",
                scalar / simd
            );
            lines.push(format!(
                "    {{\"bench\": \"avx512_kernels\", \"kernel\": \"{kernel}\", \"n\": {n}, \
                 \"scalar_ns\": {scalar:.1}, \"dispatched_ns\": {simd:.1}, \
                 \"f32_input_ns\": {f32_in:.1}, \"speedup\": {:.3}, \
                 \"avx512_built\": {avx512_built}, \"avx512_cpu\": {avx512_cpu}}}",
                scalar / simd
            ));
        }
    }

    let json = format!(
        "{{\n  \"suite\": \"kernels\",\n  \"tensor\": \"uniform 32x24x16, 400 nnz\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        lines.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_linalg, bench_row_update, bench_ttmc);

fn main() {
    // `cargo bench`/`cargo test` pass harness flags; this manual harness
    // (criterion shim + artifact writer) has no use for them.
    let _ = std::env::args();
    benches();
    write_artifact();
}
