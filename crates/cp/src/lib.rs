//! Row-wise parallel **CP-ALS** for sparse, partially observed tensors.
//!
//! The P-Tucker paper (Section VI) situates its row-wise update among the
//! CP-factorization methods of Shin et al. (CDTF/SALS, TKDE 2017), which
//! "offer a row-wise parallelization for CPD as P-TUCKER does for Tucker
//! decomposition". This crate implements that CP analogue, both as a
//! substrate in its own right and as the ablation partner that quantifies
//! what Tucker's dense core buys over CP's superdiagonal core.
//!
//! The model is `X(i₁,…,i_N) ≈ Σ_{r=1}^{R} Πₙ a⁽ⁿ⁾(iₙ, r)` — exactly the
//! Tucker model (Eq. 4 of the paper) with a fixed identity-weighted
//! superdiagonal core. Each factor row has the closed-form update
//! `(B + λI)⁻¹ c` over only its observed slice, with
//! `δ_α(r) = Π_{k≠n} a⁽ᵏ⁾(iₖ, r)` — an `O(NR)` kernel per entry versus
//! P-Tucker's `O(N·Jᴺ)`.
//!
//! ```
//! use ptucker_cp::{cp_als, CpOptions};
//! use ptucker_tensor::SparseTensor;
//!
//! let x = SparseTensor::new(
//!     vec![4, 4],
//!     vec![(vec![0, 0], 1.0), (vec![1, 1], 2.0), (vec![2, 2], 0.5), (vec![3, 1], 1.5)],
//! ).unwrap();
//! let r = cp_als(&x, &CpOptions::new(2).max_iters(10).seed(1)).unwrap();
//! assert!(r.final_error.is_finite());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)]

use ptucker::engine::Scratch;
use ptucker::{PtuckerError, Result};
use ptucker_linalg::kernels::{axpy, hadamard_in_place, syr_in_place};
use ptucker_linalg::Matrix;
use ptucker_sched::{parallel_reduce, parallel_rows_mut_scheduled, Schedule};
use ptucker_tensor::{ModeStreams, SparseTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Configuration for a CP-ALS fit.
#[derive(Debug, Clone)]
pub struct CpOptions {
    /// CP rank `R` (number of rank-1 components).
    pub rank: usize,
    /// L2 regularization on the factors.
    pub lambda: f64,
    /// Maximum ALS iterations.
    pub max_iters: usize,
    /// Relative-change convergence tolerance on the reconstruction error.
    pub tol: f64,
    /// Worker threads.
    pub threads: usize,
    /// Row-update scheduling policy.
    pub schedule: Schedule,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl CpOptions {
    /// Creates options with defaults matching the P-Tucker conventions
    /// (λ = 0.01, 20 iterations).
    pub fn new(rank: usize) -> Self {
        CpOptions {
            rank,
            lambda: 0.01,
            max_iters: 20,
            tol: 1e-4,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            schedule: Schedule::dynamic(),
            seed: 0,
        }
    }

    /// Sets the regularization parameter.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the maximum iteration count.
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Sets the convergence tolerance.
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the scheduling policy.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate_for(&self, dims: &[usize]) -> Result<()> {
        if self.rank == 0 {
            return Err(PtuckerError::InvalidConfig("rank must be >= 1".into()));
        }
        if dims.is_empty() {
            return Err(PtuckerError::InvalidConfig(
                "tensor order must be >= 1".into(),
            ));
        }
        if self.max_iters == 0 {
            return Err(PtuckerError::InvalidConfig("max_iters must be >= 1".into()));
        }
        if !(self.lambda >= 0.0 && self.lambda.is_finite()) {
            return Err(PtuckerError::InvalidConfig(
                "lambda must be finite and >= 0".into(),
            ));
        }
        Ok(())
    }
}

/// A fitted CP model: `N` factor matrices of shape `Iₙ × R`.
#[derive(Debug, Clone)]
pub struct CpDecomposition {
    /// One factor matrix per mode.
    pub factors: Vec<Matrix>,
}

impl CpDecomposition {
    /// CP rank `R`.
    pub fn rank(&self) -> usize {
        self.factors.first().map_or(0, |f| f.cols())
    }

    /// Predicts one cell: `Σ_r Πₙ a⁽ⁿ⁾(iₙ, r)`.
    pub fn predict(&self, index: &[usize]) -> f64 {
        debug_assert_eq!(index.len(), self.factors.len());
        let r = self.rank();
        let mut acc = 0.0;
        for j in 0..r {
            let mut term = 1.0;
            for (n, f) in self.factors.iter().enumerate() {
                term *= f[(index[n], j)];
                if term == 0.0 {
                    break;
                }
            }
            acc += term;
        }
        acc
    }

    /// Reconstruction error over observed entries (the Eq. 5 metric).
    pub fn reconstruction_error(
        &self,
        x: &SparseTensor,
        threads: usize,
        schedule: Schedule,
    ) -> f64 {
        self.sum_squared_error(x, threads, schedule).sqrt()
    }

    /// Held-out RMSE (0 for an empty test set).
    pub fn test_rmse(&self, test: &SparseTensor, threads: usize, schedule: Schedule) -> f64 {
        if test.nnz() == 0 {
            return 0.0;
        }
        (self.sum_squared_error(test, threads, schedule) / test.nnz() as f64).sqrt()
    }

    fn sum_squared_error(&self, x: &SparseTensor, threads: usize, schedule: Schedule) -> f64 {
        parallel_reduce(
            x.nnz(),
            threads,
            schedule,
            || 0.0f64,
            |acc, e| {
                let d = x.value(e) - self.predict(x.index(e));
                acc + d * d
            },
            |a, b| a + b,
        )
    }

    /// Normalizes every factor column to unit norm and returns the
    /// per-component weights `λ_r = Πₙ ‖a⁽ⁿ⁾_{:r}‖` (the conventional CP
    /// normal form). Zero components get weight 0 and are left untouched.
    pub fn normalize(&mut self) -> Vec<f64> {
        let r = self.rank();
        let mut weights = vec![1.0; r];
        for f in self.factors.iter_mut() {
            for j in 0..r {
                let norm = (0..f.rows())
                    .map(|i| f[(i, j)] * f[(i, j)])
                    .sum::<f64>()
                    .sqrt();
                if norm > 0.0 {
                    weights[j] *= norm;
                    for i in 0..f.rows() {
                        f[(i, j)] /= norm;
                    }
                } else {
                    weights[j] = 0.0;
                }
            }
        }
        weights
    }
}

/// Per-fit statistics mirroring `ptucker::FitStats`' shape.
#[derive(Debug, Clone)]
pub struct CpResult {
    /// The fitted model.
    pub decomposition: CpDecomposition,
    /// Reconstruction error after each iteration.
    pub errors: Vec<f64>,
    /// Wall-clock seconds per iteration.
    pub seconds: Vec<f64>,
    /// Whether the error converged before the iteration cap.
    pub converged: bool,
    /// Final reconstruction error.
    pub final_error: f64,
    /// Total wall-clock time.
    pub total_seconds: f64,
}

/// Runs row-wise CP-ALS on the observed entries of `x`.
///
/// # Errors
/// * [`PtuckerError::InvalidConfig`] for bad options.
/// * [`PtuckerError::Linalg`] if a row system is exactly singular with
///   `lambda == 0`.
pub fn cp_als(x: &SparseTensor, opts: &CpOptions) -> Result<CpResult> {
    opts.validate_for(x.dims())?;
    let t0 = Instant::now();
    let order = x.order();
    let r = opts.rank;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut factors: Vec<Matrix> = x
        .dims()
        .iter()
        .map(|&i_n| {
            let data: Vec<f64> = (0..i_n * r).map(|_| rng.gen::<f64>()).collect();
            Matrix::from_vec(i_n, r, data).expect("length matches")
        })
        .collect();

    let mut errors = Vec::with_capacity(opts.max_iters);
    let mut seconds = Vec::with_capacity(opts.max_iters);
    let mut prev_err = f64::INFINITY;
    let mut converged = false;

    // One scratch arena per worker thread for the whole fit — the same
    // zero-allocation discipline as the P-Tucker engine.
    let mut scratch_pool: Vec<Scratch> =
        (0..opts.threads.max(1)).map(|_| Scratch::new(r)).collect();

    // The same mode-major execution plan the Tucker engine runs on: built
    // once per fit, every row update streams its slice linearly.
    let plan = ModeStreams::build(x)?;

    for _ in 0..opts.max_iters {
        let t_iter = Instant::now();
        for n in 0..order {
            update_factor(x, &plan, &mut factors, n, opts, &mut scratch_pool)?;
        }
        let d = CpDecomposition {
            factors: factors.clone(),
        };
        let err = d
            .sum_squared_error(x, opts.threads, Schedule::Static)
            .sqrt();
        errors.push(err);
        seconds.push(t_iter.elapsed().as_secs_f64());
        if err.is_finite()
            && prev_err.is_finite()
            && (prev_err - err).abs() <= opts.tol * prev_err.max(f64::EPSILON)
        {
            converged = true;
            break;
        }
        prev_err = err;
    }

    let decomposition = CpDecomposition { factors };
    let final_error = decomposition.reconstruction_error(x, opts.threads, Schedule::Static);
    Ok(CpResult {
        decomposition,
        errors,
        seconds,
        converged,
        final_error,
        total_seconds: t0.elapsed().as_secs_f64(),
    })
}

/// Row-wise update of factor `n`: for each observed row solve
/// `(B + λI) row = c` with `B = Σ δδᵀ`, `δ_α(r) = Π_{k≠n} a⁽ᵏ⁾(iₖ, r)`.
/// The slice is walked through the mode's stream (values + packed
/// other-mode indices, contiguous); δ is built as a Hadamard product of
/// whole factor rows and the normal equations accumulate through the same
/// `hadamard`/`axpy`/`syr` micro-kernels (`ptucker_linalg::kernels`) as
/// the Tucker engine's blocked path, in the per-thread [`Scratch`] arenas
/// — no heap allocation inside the row loop.
fn update_factor(
    x: &SparseTensor,
    plan: &ModeStreams,
    factors: &mut [Matrix],
    mode: usize,
    opts: &CpOptions,
    scratch_pool: &mut [Scratch],
) -> Result<()> {
    let i_n = x.dims()[mode];
    let r = opts.rank;
    let a_n = std::mem::replace(&mut factors[mode], Matrix::zeros(0, 0));
    let mut data = a_n.into_vec();
    let failed = AtomicBool::new(false);
    {
        let factors_ro: &[Matrix] = factors;
        let stream = plan.mode(mode);
        let k_others = stream.other_count();
        let run = |scratch: &mut Scratch, i: usize, row: &mut [f64]| {
            let range = stream.slice_range(i);
            if range.is_empty() {
                row.fill(0.0);
                return;
            }
            let (delta, c, b_upper) = scratch.accumulators(r);
            let values = stream.values();
            let others = stream.others_flat();
            for pos in range {
                let o = &others[pos * k_others..(pos + 1) * k_others];
                delta.fill(1.0);
                let mut slot = 0;
                for (k, f) in factors_ro.iter().enumerate() {
                    if k == mode {
                        continue;
                    }
                    hadamard_in_place(delta, f.row(o[slot] as usize));
                    slot += 1;
                }
                axpy(values.at(pos), delta, c);
                syr_in_place(b_upper, r, delta);
            }
            if !scratch.solve(r, opts.lambda, row) {
                failed.store(true, Ordering::Relaxed);
            }
        };
        parallel_rows_mut_scheduled(
            &mut data,
            r,
            opts.threads,
            opts.schedule,
            |i| stream.slice_len(i),
            scratch_pool,
            run,
        );
    }
    factors[mode] = Matrix::from_vec(i_n, r, data)?;
    if failed.load(Ordering::Relaxed) {
        return Err(PtuckerError::Linalg(
            ptucker_linalg::LinalgError::Singular { pivot: 0 },
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptucker_datagen::planted_cp;
    use ptucker_tensor::TrainTestSplit;

    fn planted(seed: u64) -> SparseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        planted_cp(&[15, 12, 10], 3, 800, 0.01, &mut rng).tensor
    }

    #[test]
    fn error_decreases_monotonically() {
        let x = planted(1);
        let r = cp_als(
            &x,
            &CpOptions::new(3).max_iters(8).tol(0.0).lambda(1e-6).seed(2),
        )
        .unwrap();
        for w in r.errors.windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-9), "CP error increased: {w:?}");
        }
    }

    #[test]
    fn recovers_planted_cp_structure() {
        let x = planted(2);
        let r = cp_als(&x, &CpOptions::new(3).max_iters(20).seed(3)).unwrap();
        let rel = r.final_error / x.frobenius_norm();
        assert!(rel < 0.15, "relative error {rel}");
    }

    #[test]
    fn prediction_beats_zero_on_held_out() {
        let x = planted(3);
        let mut rng = StdRng::seed_from_u64(9);
        let split = TrainTestSplit::new(&x, 0.1, &mut rng).unwrap();
        let r = cp_als(&split.train, &CpOptions::new(3).max_iters(20).seed(5)).unwrap();
        let rmse = r.decomposition.test_rmse(&split.test, 2, Schedule::Static);
        let zero = (split.test.values().iter().map(|v| v * v).sum::<f64>()
            / split.test.nnz() as f64)
            .sqrt();
        assert!(rmse < 0.5 * zero, "cp rmse {rmse} vs zero {zero}");
    }

    #[test]
    fn deterministic_and_thread_invariant() {
        let x = planted(4);
        let base = CpOptions::new(2).max_iters(4).tol(0.0).seed(7);
        let a = cp_als(&x, &base.clone().threads(1)).unwrap();
        let b = cp_als(&x, &base.threads(4)).unwrap();
        for (u, v) in a.errors.iter().zip(&b.errors) {
            assert!((u - v).abs() < 1e-9 * u.max(1.0));
        }
    }

    #[test]
    fn normalize_preserves_predictions() {
        let x = planted(5);
        let r = cp_als(&x, &CpOptions::new(3).max_iters(5).seed(1)).unwrap();
        let mut d = r.decomposition.clone();
        let before: Vec<f64> = (0..x.nnz()).map(|e| d.predict(x.index(e))).collect();
        let weights = d.normalize();
        // Predictions after normalization are scaled per component; to
        // recompose, scale one factor's columns back by the weights.
        for (j, w) in weights.iter().enumerate() {
            for i in 0..d.factors[0].rows() {
                d.factors[0][(i, j)] *= w;
            }
        }
        for (e, want) in before.iter().enumerate() {
            let got = d.predict(x.index(e));
            assert!((got - want).abs() < 1e-9 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn tucker_with_more_core_freedom_fits_at_least_as_well() {
        // CP rank R = Tucker ranks (R,…,R) with a constrained core; the
        // unconstrained Tucker fit cannot be meaningfully worse.
        let x = planted(6);
        let cp = cp_als(&x, &CpOptions::new(2).max_iters(12).seed(4)).unwrap();
        let tk = ptucker::PTucker::new(
            ptucker::FitOptions::new(vec![2, 2, 2])
                .max_iters(12)
                .seed(4),
        )
        .unwrap()
        .fit(&x)
        .unwrap();
        assert!(
            tk.stats.final_error <= cp.final_error * 1.25 + 1e-6,
            "tucker {} vs cp {}",
            tk.stats.final_error,
            cp.final_error
        );
    }

    #[test]
    fn invalid_options_rejected() {
        let x = planted(7);
        assert!(cp_als(&x, &CpOptions::new(0)).is_err());
        assert!(cp_als(&x, &CpOptions::new(2).max_iters(0)).is_err());
        assert!(cp_als(&x, &CpOptions::new(2).lambda(f64::NAN)).is_err());
    }

    #[test]
    fn empty_slices_zeroed() {
        let x = SparseTensor::new(
            vec![4, 3],
            vec![(vec![0, 0], 1.0), (vec![1, 1], 2.0), (vec![3, 2], 0.5)],
        )
        .unwrap();
        let r = cp_als(&x, &CpOptions::new(2).max_iters(3).seed(1)).unwrap();
        // Row 2 of mode 0 was never observed → predicts 0.
        assert!(r.decomposition.predict(&[2, 0]).abs() < 1e-9);
    }
}
